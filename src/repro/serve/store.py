"""Versioned signature store with atomic hot-swap and two-phase staging.

Agarwal & Hussain (arXiv:1805.10848) observe that signature *deployment*
flaws — stale rulesets with no update path — dominate real-world IDS
failures.  The store is the update path: a mounted detector can be
replaced from a signature JSON file (the deployable artifact of
``core/serialize.py``) or from an inline JSON body without restarting
the gateway or dropping in-flight requests.

The swap protocol is copy-on-write: the replacement detector is built
completely off to the side (parse, validate, compile, **warm**), then
published with one attribute assignment.  Readers that captured the
previous :class:`StoreVersion` keep answering with it; readers that
arrive after the assignment see the new one.  A candidate that fails
anywhere before publication — a bad parse *or* a fused plan that blows
up while warming — raises :class:`StoreError` with a machine-readable
``reason``, increments ``reload_rejected``, and leaves the current
version untouched.

For fleet deployments the store also speaks a two-phase protocol:
:meth:`SignatureStore.stage_json` builds and warms a candidate under an
explicit generation number without publishing it, and
:meth:`SignatureStore.commit_staged` flips to it atomically.  The fleet
supervisor stages on every shard, waits for unanimous success, then
commits everywhere — so no shard ever publishes a generation a sibling
rejected.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.core.serialize import signature_set_from_json
from repro.core.signature import SignatureSet
from repro.ids.engine import Detector, PSigeneDetector
from repro.serve.telemetry import Telemetry

__all__ = ["SignatureStore", "StoreError", "StoreVersion"]


class StoreError(ValueError):
    """Raised when a swap cannot be performed; the old version survives.

    Attributes:
        reason: machine-readable rejection class — ``"parse"`` (invalid
            signature JSON), ``"warm"`` (candidate's fused plan failed
            to compile), ``"io"`` (unreadable file), ``"config"`` (no
            reload path configured), or ``"stage"`` (two-phase protocol
            misuse).
    """

    def __init__(self, message: str, *, reason: str = "parse") -> None:
        super().__init__(message)
        self.reason = reason


def _warm_detector(detector: Detector) -> None:
    """Eagerly build the fused fast path for *detector*, if it has one."""
    signature_set = getattr(detector, "signature_set", None)
    warm = getattr(signature_set, "warm", None)
    if callable(warm):
        warm()


@dataclass(frozen=True)
class StoreVersion:
    """One immutable published generation of the mounted detector.

    Attributes:
        version: monotonically increasing generation number (1 = initial).
        detector: the detector answering requests for this generation.
        source: provenance string (``file:<path>``, ``inline``, ``static``).
    """

    version: int
    detector: Detector
    source: str


class SignatureStore:
    """Holds the current :class:`StoreVersion`; swaps are atomic.

    Args:
        detector: initially mounted detector.
        path: default signature JSON file for path-based reloads.
        detector_factory: builds a detector from a loaded
            :class:`SignatureSet`; defaults to :class:`PSigeneDetector`
            keeping the currently mounted detector's name.
        telemetry: sink for the ``reloads`` / ``reload_failures`` /
            ``reload_rejected`` counters.
        source: provenance of the initial version.
        initial_version: generation number of the initial version — a
            respawned fleet shard mounts the fleet's *current*
            generation, not 1, so its responses carry the right version.
    """

    def __init__(
        self,
        detector: Detector,
        *,
        path: str | None = None,
        detector_factory: Callable[[SignatureSet], Detector] | None = None,
        telemetry: Telemetry | None = None,
        source: str = "static",
        initial_version: int = 1,
    ) -> None:
        self.path = path
        self.telemetry = telemetry
        self._factory = detector_factory
        self._swap_lock = threading.Lock()
        self._staged: dict[int, StoreVersion] = {}
        _warm_detector(detector)
        self._current = StoreVersion(
            version=initial_version, detector=detector, source=source
        )

    @classmethod
    def from_file(
        cls,
        path: str,
        *,
        detector_factory: Callable[[SignatureSet], Detector] | None = None,
        telemetry: Telemetry | None = None,
    ) -> "SignatureStore":
        """Mount a pSigene signature JSON file as version 1."""
        with open(path) as handle:
            signature_set = signature_set_from_json(handle.read())
        factory = detector_factory or PSigeneDetector
        return cls(
            factory(signature_set),
            path=path,
            detector_factory=detector_factory,
            telemetry=telemetry,
            source=f"file:{path}",
        )

    def current(self) -> StoreVersion:
        """The live generation.  Callers snapshot it once per request so a
        concurrent swap never changes the detector mid-inspection."""
        return self._current

    @property
    def version(self) -> int:
        """Generation number of the live version."""
        return self._current.version

    def _build(self, signature_set: SignatureSet) -> Detector:
        if self._factory is not None:
            return self._factory(signature_set)
        return PSigeneDetector(
            signature_set, name=self._current.detector.name
        )

    def _reject(self, message: str, *, reason: str = "parse") -> StoreError:
        if self.telemetry is not None:
            self.telemetry.increment("reload_failures")
            self.telemetry.increment("reload_rejected")
        return StoreError(message, reason=reason)

    def _warm_candidate(self, detector: Detector) -> None:
        """Warm ``detector`` or reject it; a candidate whose fused plan
        cannot compile must never be published."""
        try:
            _warm_detector(detector)
        except Exception as exc:
            raise self._reject(
                f"rejected signature swap: candidate failed to warm: {exc}",
                reason="warm",
            ) from exc

    # -- one-shot swap (single-process gateway) ------------------------

    def swap_detector(self, detector: Detector, *, source: str) -> StoreVersion:
        """Publish ``detector`` as the next generation.

        The detector's fused matching plan is compiled *before* the
        version pointer moves, so the first request against the new
        generation never pays compile cost (copy-on-write includes the
        fast path, not just the parse).  A warm failure rejects the
        candidate and the old version keeps serving.
        """
        self._warm_candidate(detector)
        with self._swap_lock:
            published = StoreVersion(
                version=self._current.version + 1,
                detector=detector,
                source=source,
            )
            self._current = published
        if self.telemetry is not None:
            self.telemetry.increment("reloads")
        return published

    def swap_json(self, text: str, *, source: str = "inline") -> StoreVersion:
        """Parse signature JSON and publish it; on failure the current
        version keeps serving.

        Raises:
            StoreError: when ``text`` is not a valid signature set or
                the candidate fails to warm.
        """
        try:
            signature_set = signature_set_from_json(text)
        except Exception as exc:
            # Untrusted input: malformed documents fail in arbitrary
            # ways (wrong JSON, wrong shape, wrong types) and none of
            # them may take down the serving store.
            raise self._reject(f"rejected signature swap: {exc}") from exc
        return self.swap_detector(self._build(signature_set), source=source)

    def reload_from_path(self, path: str | None = None) -> StoreVersion:
        """Reload from ``path`` (or the configured default) and publish.

        Raises:
            StoreError: when no path is configured or the file is
                missing/invalid; the current version keeps serving.
        """
        target = path or self.path
        if target is None:
            raise self._reject(
                "no signature path configured; this store was mounted "
                "with a static detector",
                reason="config",
            )
        try:
            with open(target) as handle:
                text = handle.read()
        except OSError as exc:
            raise self._reject(
                f"cannot read {target}: {exc}", reason="io"
            ) from exc
        return self.swap_json(text, source=f"file:{target}")

    # -- two-phase staging (fleet reload protocol) ---------------------

    def stage_detector(
        self, detector: Detector, *, generation: int, source: str
    ) -> None:
        """Build-and-warm ``detector`` as candidate ``generation``
        without publishing it.

        Raises:
            StoreError: generation not ahead of the live version, or the
                candidate failed to warm.
        """
        if generation <= self._current.version:
            raise self._reject(
                f"stage generation {generation} is not ahead of live "
                f"version {self._current.version}",
                reason="stage",
            )
        self._warm_candidate(detector)
        with self._swap_lock:
            self._staged[generation] = StoreVersion(
                version=generation, detector=detector, source=source
            )

    def stage_json(
        self, text: str, *, generation: int, source: str = "inline"
    ) -> None:
        """Parse, build, and warm candidate ``generation`` from JSON.

        Raises:
            StoreError: invalid JSON, warm failure, or a stale
                generation number; nothing is staged on failure.
        """
        try:
            signature_set = signature_set_from_json(text)
        except Exception as exc:
            raise self._reject(
                f"rejected signature stage: {exc}"
            ) from exc
        self.stage_detector(
            self._build(signature_set), generation=generation, source=source
        )

    def get_staged(self, generation: int) -> StoreVersion | None:
        """The staged (warmed, unpublished) candidate for ``generation``,
        or None.  The canary loop mirrors shadow traffic to this
        detector while the published version keeps answering."""
        with self._swap_lock:
            return self._staged.get(generation)

    def staged_generations(self) -> tuple[int, ...]:
        """Generation numbers currently staged, ascending."""
        with self._swap_lock:
            return tuple(sorted(self._staged))

    def commit_staged(self, generation: int) -> StoreVersion:
        """Atomically publish the previously staged ``generation``.

        Raises:
            StoreError: no such staged candidate (stage first).
        """
        with self._swap_lock:
            staged = self._staged.pop(generation, None)
            if staged is None:
                raise StoreError(
                    f"no staged candidate for generation {generation}",
                    reason="stage",
                )
            self._current = staged
        if self.telemetry is not None:
            self.telemetry.increment("reloads")
        return staged

    def abort_staged(self, generation: int | None = None) -> None:
        """Drop a staged candidate (or all of them); the live version is
        untouched.  Aborting a generation that was never staged is a
        no-op — the supervisor aborts broadly on any shard failure."""
        with self._swap_lock:
            if generation is None:
                self._staged.clear()
            else:
                self._staged.pop(generation, None)
