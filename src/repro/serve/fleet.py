"""Fleet data plane: one shard process per core, one shared port.

The asyncio gateway is single-process, so its throughput tops out at
one core no matter how many worker coroutines it runs.  The fleet
splits the data plane across N processes — each running the existing
:class:`~repro.serve.gateway.DetectionGateway` unchanged — all
accepting on **one** TCP port:

- With ``SO_REUSEPORT`` (Linux, modern BSDs) every shard binds its own
  listening socket to the shared port and the kernel load-balances new
  connections across them.  A shard that dies drops out of the accept
  group automatically.
- Without it, the supervisor binds a single listening socket before
  forking and every shard accepts on the fork-inherited file
  descriptor — the classic pre-fork accept loop.

This module is the *shard side*: the process entrypoint, the control
channel it speaks with the supervisor (a duplex pipe carrying small
picklable dicts), and the lifecycle of one shard.  The control plane —
spawning, two-phase reload fan-out, telemetry aggregation, respawn —
lives in :mod:`repro.serve.supervisor`.

Shard lifecycle (commands arrive over the pipe)::

    spawn -> ping -> selfcheck -> open -> ... serving ...
                                        -> stage/commit/abort (reload)
                                        -> stats (telemetry pull)
                                        -> drain (deadline-bound exit)

A shard never publishes a signature generation on its own: reloads
arrive only as ``stage`` (build + warm off to the side, report
success/failure) followed by ``commit`` (atomic flip) — the supervisor
commits only after *every* shard staged successfully, so the fleet
never serves a mixed generation.  The shard's own HTTP ``POST /reload``
is disabled (``allow_reload=False``).
"""

from __future__ import annotations

import asyncio
import functools
import os
import signal
import socket
from dataclasses import dataclass, field
from typing import Any

from repro.serve.gateway import DetectionGateway, GatewayConfig
from repro.serve.store import SignatureStore, StoreError
from repro.serve.telemetry import Telemetry
from repro.surfaces import parse_surfaces

__all__ = [
    "PROBE_PAYLOADS",
    "ShardBoot",
    "fleet_context",
    "make_reuseport_listener",
    "reuseport_available",
    "shard_entry",
]

#: Deterministic spot-check payloads: a respawned shard must answer
#: these exactly like the supervisor's reference detector before it is
#: allowed to rejoin the accept group.  A mix of obvious injections and
#: benign portal traffic so both verdict polarities are exercised.
PROBE_PAYLOADS = (
    "id=1' UNION SELECT username, password FROM users--",
    "q=1 OR 1=1; DROP TABLE users",
    "search=union+select+benchmark(500000,md5(1))",
    "item=2' AND SLEEP(5)--",
    "page=2&sort=asc&filter=recent",
    "name=alice&city=Z%C3%BCrich",
    "q=how to make pancakes",
    "session=abc123&lang=en-US",
)


def reuseport_available() -> bool:
    """Can this platform share one port across independent listeners?"""
    return hasattr(socket, "SO_REUSEPORT")


def make_reuseport_listener(
    host: str, port: int, *, listen: bool = True, backlog: int = 128
) -> socket.socket:
    """A fresh ``SO_REUSEPORT`` socket bound to ``(host, port)``.

    With ``listen=False`` the socket is bound but never enters the
    kernel's accept group — the supervisor uses one as a *placeholder*
    that reserves an ephemeral port for the fleet (and keeps it
    reserved across shard deaths) without ever stealing a connection.
    """
    if not reuseport_available():
        raise RuntimeError("SO_REUSEPORT is not available on this platform")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(backlog)
    except BaseException:
        sock.close()
        raise
    return sock


def fleet_context():
    """The multiprocessing context fleets use.

    ``fork`` when available: shards inherit the (already warmed)
    detector and, on the no-``SO_REUSEPORT`` fallback, the shared
    listening socket — no pickling, no re-import, millisecond spawns.
    Elsewhere the default context is used; the detector must then be
    picklable and ``SO_REUSEPORT`` must exist (an inherited listener
    cannot cross a spawn boundary).
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class ShardBoot:
    """Everything one shard process needs to come up.

    Attributes:
        shard_id: stable slot number (respawns keep it).
        detector: the detector to mount (current fleet generation).
        generation: store version the detector represents.
        source: provenance string for the shard's store.
        host: data-plane bind address.
        port: the fleet's shared data port.
        reuseport: bind a private ``SO_REUSEPORT`` listener (else serve
            on ``listen_socket``).
        listen_socket: fork-inherited shared listener (fallback path).
        queue_bound: per-shard admission queue capacity.
        policy: per-shard backpressure policy.
        workers: detector worker coroutines per shard.
        max_inflight_per_connection: pipelining window per connection.
        drain_timeout: seconds a ``drain`` command may spend on queued
            work before the shard exits anyway.
        cost_threshold: ``cost`` policy shed threshold.
        high_water: ``cost`` policy congestion fraction.
        surfaces: default injection-surface selection spec for framed
            requests that do not name one (a string, so the boot stays
            picklable; parsed in the child).
        close_fds: supervisor-side descriptors a forked child should
            close immediately (other shards' pipes, the control-plane
            listener) so a respawned shard never holds them open past
            the supervisor's own close.
    """

    shard_id: int
    detector: Any
    generation: int = 1
    source: str = "static"
    host: str = "127.0.0.1"
    port: int = 0
    reuseport: bool = True
    listen_socket: socket.socket | None = None
    queue_bound: int = 1024
    policy: str = "block"
    workers: int = 4
    max_inflight_per_connection: int = 64
    drain_timeout: float = 10.0
    cost_threshold: float = 256.0
    high_water: float = 0.5
    surfaces: str = "query,form"
    close_fds: tuple[int, ...] = field(default_factory=tuple)


def shard_entry(boot: ShardBoot, conn) -> None:
    """Process entrypoint for one fleet shard (runs in the child)."""
    # The supervisor coordinates shutdown: a stray ^C in the foreground
    # process group must not kill shards before they can drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for fd in boot.close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    asyncio.run(_ShardServer(boot, conn).run())


class _ShardServer:
    """One shard's control loop: a gateway plus the supervisor pipe."""

    def __init__(self, boot: ShardBoot, conn) -> None:
        self.boot = boot
        self.conn = conn
        self.telemetry = Telemetry()
        self.store = SignatureStore(
            boot.detector,
            telemetry=self.telemetry,
            source=boot.source,
            initial_version=boot.generation,
        )
        self.gateway = DetectionGateway(
            self.store,
            GatewayConfig(
                host=boot.host,
                port=boot.port,
                queue_bound=boot.queue_bound,
                policy=boot.policy,
                workers=boot.workers,
                max_inflight_per_connection=boot.max_inflight_per_connection,
                drain_timeout=boot.drain_timeout,
                cost_threshold=boot.cost_threshold,
                high_water=boot.high_water,
                allow_reload=False,
                surfaces=parse_surfaces(boot.surfaces),
            ),
            self.telemetry,
        )
        self._data_socket: socket.socket | None = None
        self._serving = False
        self._draining = False
        self._done: asyncio.Event | None = None  # created inside run()'s loop

    async def run(self) -> None:
        """Serve until a ``drain`` command (or supervisor death)."""
        loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        # SIGTERM — the supervisor's escalation path (and any external
        # process manager) — triggers the same deadline-bound drain as
        # the pipe command.
        loop.add_signal_handler(
            signal.SIGTERM,
            lambda: loop.create_task(
                self._drain_and_exit(self.boot.drain_timeout)
            ),
        )
        loop.add_reader(self.conn.fileno(), self._on_readable)
        try:
            await self._done.wait()
        finally:
            loop.remove_reader(self.conn.fileno())
            if self._data_socket is not None:
                self._data_socket.close()
            try:
                self.conn.close()
            except OSError:
                pass

    # -- control channel -----------------------------------------------

    def _on_readable(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while self.conn.poll():
                message = self.conn.recv()
                loop.create_task(self._handle(message))
        except (EOFError, OSError):
            # Supervisor is gone: drain on our own deadline and exit
            # rather than serving as an orphan forever.
            loop.remove_reader(self.conn.fileno())
            loop.create_task(self._drain_and_exit(self.boot.drain_timeout))

    def _reply(self, message: dict, **fields: Any) -> None:
        message_id = message.get("id")
        if message_id is None or message_id < 0:
            return
        try:
            self.conn.send({"id": message_id, **fields})
        except (BrokenPipeError, OSError):
            pass

    async def _handle(self, message: dict) -> None:
        command = message.get("cmd")
        try:
            if command == "ping":
                self._reply(
                    message, ok=True, pid=os.getpid(),
                    version=self.store.version, serving=self._serving,
                )
            elif command == "open":
                host, port = await self._open()
                self._reply(message, ok=True, host=host, port=port)
            elif command == "selfcheck":
                self._reply(
                    message, ok=True,
                    verdicts=self._selfcheck(message["payloads"]),
                )
            elif command == "stage":
                await self._stage(message)
            elif command == "commit":
                published = self.store.commit_staged(message["generation"])
                self._reply(message, ok=True, version=published.version)
            elif command == "abort":
                self.store.abort_staged(message.get("generation"))
                self._reply(message, ok=True)
            elif command == "stats":
                self._reply(
                    message, ok=True, pid=os.getpid(),
                    version=self.store.version,
                    queue_depth=self.gateway.admission.depth,
                    serving=self._serving,
                    state=self.telemetry.raw_state(),
                )
            elif command == "drain":
                drained = await self._drain_and_exit(
                    message.get("timeout", self.boot.drain_timeout)
                )
                self._reply(message, ok=True, drained=drained)
            else:
                self._reply(
                    message, ok=False, error=f"unknown command {command!r}"
                )
        except StoreError as exc:
            self._reply(
                message, ok=False, error=str(exc), reason=exc.reason
            )
        except Exception as exc:  # control bug: answer, don't die
            self._reply(
                message, ok=False, error=f"{type(exc).__name__}: {exc}",
                reason="internal",
            )

    # -- command implementations ---------------------------------------

    async def _open(self) -> tuple[str, int]:
        """Join the accept group and start serving the data plane."""
        if self._serving:
            sockname = self._data_socket.getsockname()
            return sockname[0], sockname[1]
        if self.boot.listen_socket is not None:
            self._data_socket = self.boot.listen_socket
        else:
            self._data_socket = make_reuseport_listener(
                self.boot.host, self.boot.port
            )
        host, port = await self.gateway.start(sock=self._data_socket)
        self._serving = True
        return host, port

    def _selfcheck(self, payloads: list[str]) -> list[dict]:
        """Inspect probe payloads with the live detector, serially."""
        detector = self.store.current().detector
        out = []
        for payload in payloads:
            detection = detector.inspect(payload)
            out.append({
                "alert": bool(detection.alert),
                "score": float(detection.score),
                "matched": [int(s) for s in detection.matched_sids],
            })
        return out

    async def _stage(self, message: dict) -> None:
        """Build + warm a reload candidate off the data path."""
        stage = functools.partial(
            self.store.stage_json,
            message["text"],
            generation=message["generation"],
            source=message.get("source", "fleet"),
        )
        # Warming compiles the fused plan — CPU work that must not
        # stall in-flight inspections, so it runs on a thread.
        await asyncio.get_running_loop().run_in_executor(None, stage)
        self._reply(
            message, ok=True, staged=message["generation"],
            version=self.store.version,
        )

    async def _drain_and_exit(self, timeout: float) -> bool:
        """Deadline-bound drain; idempotent; releases :meth:`run`."""
        if self._draining:
            return True
        self._draining = True
        drained = True
        if self._serving:
            try:
                await asyncio.wait_for(
                    self.gateway.stop(), timeout + 5.0
                )
            except asyncio.TimeoutError:
                drained = False
        self._done.set()
        return drained
