"""Traffic traces: ordered collections of HTTP requests with ground truth.

The evaluation (Section III-B) uses three test datasets — a benign 1-week
trace for FPR and two attack traces (SQLmap, Arachni+Vega) for TPR.  A
:class:`Trace` is the common container those datasets flow through on their
way to the IDS engine and the evaluation harness.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.http.request import HttpRequest

LABEL_ATTACK = "attack"
LABEL_BENIGN = "benign"


@dataclass
class Trace:
    """An ordered set of requests plus bookkeeping.

    Attributes:
        name: human-readable identifier (``"sqlmap-test"``, ``"benign-week"``).
        requests: the requests in arrival order.
    """

    name: str
    requests: list[HttpRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[HttpRequest]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> HttpRequest:
        return self.requests[index]

    def append(self, request: HttpRequest) -> None:
        """Add one request at the end of the trace."""
        self.requests.append(request)

    def extend(self, requests: Iterable[HttpRequest]) -> None:
        """Append several requests, preserving order."""
        self.requests.extend(requests)

    def attacks(self) -> "Trace":
        """Sub-trace of requests labelled as attacks."""
        return Trace(
            name=f"{self.name}:attacks",
            requests=[r for r in self.requests if r.label == LABEL_ATTACK],
        )

    def benign(self) -> "Trace":
        """Sub-trace of requests labelled as benign."""
        return Trace(
            name=f"{self.name}:benign",
            requests=[r for r in self.requests if r.label == LABEL_BENIGN],
        )

    def payloads(self) -> list[str]:
        """Detector-visible payloads of every request, in order."""
        return [r.flat_payload() for r in self.requests]

    def merged(self, other: "Trace", name: str | None = None) -> "Trace":
        """A new trace holding this trace's requests followed by *other*'s."""
        return Trace(
            name=name or f"{self.name}+{other.name}",
            requests=list(self.requests) + list(other.requests),
        )

    def subsample(self, fraction: float, *, seed: int = 0) -> "Trace":
        """Deterministic subsample of the trace (used by Experiment 2)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        import numpy as np

        rng = np.random.default_rng(seed)
        count = int(round(fraction * len(self.requests)))
        idx = rng.choice(len(self.requests), size=count, replace=False)
        picked = [self.requests[i] for i in sorted(idx)]
        return Trace(name=f"{self.name}:{fraction:.0%}", requests=picked)
