"""HTTP substrate: URL codec, request model, and traffic traces."""

from repro.http.request import HttpRequest, RequestParseError
from repro.http.traffic import LABEL_ATTACK, LABEL_BENIGN, Trace
from repro.http.persistence import (
    TraceFormatError,
    dump_trace,
    iter_trace,
    load_trace,
    save_trace,
)
from repro.http.url import encode_query, parse_query, quote, split_url, unquote

__all__ = [
    "HttpRequest",
    "RequestParseError",
    "Trace",
    "LABEL_ATTACK",
    "LABEL_BENIGN",
    "quote",
    "unquote",
    "split_url",
    "parse_query",
    "encode_query",
    "save_trace",
    "load_trace",
    "dump_trace",
    "iter_trace",
    "TraceFormatError",
]
