"""URL encoding/decoding and query-string handling, implemented from scratch.

The paper extracts the SQL query from the HTTP request payload "by leaving out
the HTTP address, the port, and the path (typically a ``?`` indicates the start
of the query string)" (Section II-A).  This module provides the low-level URL
machinery that extraction rests on: percent decoding/encoding, ``+``-as-space
handling, and query-string splitting into ordered parameter pairs.

Nothing here depends on :mod:`urllib`; the codec is part of the reproduced
substrate so its behaviour (e.g. tolerance of malformed escapes, double
encoding) is fully under our control and testable.
"""

from __future__ import annotations

_HEX_DIGITS = "0123456789abcdefABCDEF"

#: Characters that never need escaping in a query component (RFC 3986
#: unreserved set).  Everything else is percent-encoded by :func:`quote`.
_UNRESERVED = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)


def _is_hex(ch: str) -> bool:
    return len(ch) == 1 and ch in _HEX_DIGITS


def unquote(text: str, *, plus_as_space: bool = False) -> str:
    """Decode percent-escapes in *text*.

    Malformed escapes (``%`` not followed by two hex digits) are passed
    through verbatim, mirroring how IDSes must treat attacker-controlled
    input: decoding never fails.

    Args:
        text: the raw (possibly escaped) string.
        plus_as_space: when true, ``+`` decodes to a space, as in
            ``application/x-www-form-urlencoded`` payloads.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "%" and i + 2 <= n - 1:
            hi, lo = text[i + 1], text[i + 2]
            if _is_hex(hi) and _is_hex(lo):
                out.append(chr(int(hi + lo, 16)))
                i += 3
                continue
        if ch == "+" and plus_as_space:
            out.append(" ")
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def quote(text: str) -> str:
    """Percent-encode every character outside the RFC 3986 unreserved set."""
    out: list[str] = []
    for ch in text:
        if ch in _UNRESERVED:
            out.append(ch)
        else:
            out.extend("%%%02X" % byte for byte in ch.encode("utf-8"))
    return "".join(out)


def split_url(url: str) -> tuple[str, str, str]:
    """Split *url* into ``(host, path, query)``.

    The scheme and port are discarded — the paper's extraction keeps only the
    query portion, but the host and path are needed by the crawler frontier.
    A missing component is returned as the empty string.
    """
    rest = url
    if "://" in rest:
        rest = rest.split("://", 1)[1]
    fragment_split = rest.split("#", 1)[0]
    if "?" in fragment_split:
        loc_path, query = fragment_split.split("?", 1)
    else:
        loc_path, query = fragment_split, ""
    if "/" in loc_path:
        host, path = loc_path.split("/", 1)
        path = "/" + path
    else:
        host, path = loc_path, "/"
    if ":" in host:
        host = host.split(":", 1)[0]
    return host, path, query


def parse_query(query: str) -> list[tuple[str, str]]:
    """Split a raw query string into ordered ``(name, value)`` pairs.

    Pairs are *not* decoded; decoding is a normalization step
    (:mod:`repro.normalize`) so that the feature extractor can choose the
    representation it operates on.  A bare token without ``=`` becomes a pair
    with an empty value, preserving attacker payloads like ``?1'or'1'='1``.
    """
    if not query:
        return []
    pairs: list[tuple[str, str]] = []
    for chunk in query.split("&"):
        if not chunk:
            continue
        if "=" in chunk:
            name, value = chunk.split("=", 1)
        else:
            name, value = chunk, ""
        pairs.append((name, value))
    return pairs


def encode_query(pairs: list[tuple[str, str]]) -> str:
    """Inverse of :func:`parse_query` for already-encoded pairs."""
    return "&".join(f"{name}={value}" for name, value in pairs)
