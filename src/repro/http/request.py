"""HTTP request model and raw-request parsing.

pSigene's unit of analysis is a single HTTP request: during crawling and
testing "what we see ... is the entire HTTP request payload and we extract the
SQL query from it by leaving out the HTTP address, the port, and the path"
(Section II-A).  :class:`HttpRequest` is that unit.  The paper's extraction —
query string plus urlencoded form body, flattened — survives as
:meth:`HttpRequest.flat_payload`; the surface-aware successor is
:meth:`HttpRequest.surfaces`, which yields ``(surface, locator, value)``
triples across every injection channel of the request (see
:mod:`repro.surfaces`).  The historical :meth:`HttpRequest.payload` is a
deprecation shim over the surface extraction.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.http.url import parse_query, split_url


class RequestParseError(ValueError):
    """Raised when a raw HTTP request cannot be parsed."""


@dataclass(frozen=True)
class HttpRequest:
    """One HTTP request as seen on the wire.

    Attributes:
        method: HTTP verb, upper-cased (``GET``, ``POST``...).
        host: target host, no port.
        path: URL path, always beginning with ``/``.
        query: raw (undecoded) query string, without the leading ``?``.
        headers: request headers; names lower-cased.
        body: request body; for form POSTs this carries the parameter string.
        label: optional ground-truth tag (``"attack"``/``"benign"``) used by
            the evaluation harness; it is never visible to detectors.
        stored: previously-stored ``(key, value)`` pairs this request
            replays — the second-order injection channel, where the attack
            entered on an earlier request and resurfaces here.
    """

    method: str = "GET"
    host: str = "localhost"
    path: str = "/"
    query: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""
    label: str | None = None
    stored: tuple[tuple[str, str], ...] = ()

    def surfaces(self, selection=None) -> list:
        """Detector-visible values across every injection channel.

        Returns :class:`repro.surfaces.SurfaceValue` triples —
        ``(surface, locator, value)`` — in canonical extraction order.
        *selection* restricts which surfaces are walked (a tuple of
        :class:`repro.surfaces.InjectionSurface`); ``None`` walks all.
        This supersedes :meth:`payload`, which flattened the query and
        form channels into one string and ignored the rest.
        """
        from repro.surfaces import extract_surfaces

        return extract_surfaces(self, selection)

    def flat_payload(self) -> str:
        """The paper's flattened payload: query string plus form body.

        The non-deprecated spelling for code paths that genuinely want
        the legacy two-channel extraction (the line protocol, corpus
        serialization).  New detection code should use
        :meth:`surfaces` and score per surface.
        """
        if self.body and self._is_form_body():
            if self.query:
                return self.query + "&" + self.body
            return self.body
        return self.query

    def payload(self) -> str:
        """Deprecated alias of :meth:`flat_payload`.

        Deprecated because the flattened string erases surface
        provenance and silently drops the JSON/multipart/cookie/header/
        second-order channels.  Delegates to the surface extraction
        joined in the legacy order, so output stays byte-identical to
        the historical behavior (pinned by ``tests/http/test_request``).
        """
        warnings.warn(
            "HttpRequest.payload() is deprecated; use "
            "HttpRequest.surfaces() (surface-aware) or "
            "HttpRequest.flat_payload() (legacy flattening)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.surfaces import legacy_flatten

        return legacy_flatten(self)

    def _is_form_body(self) -> bool:
        ctype = self.headers.get("content-type", "")
        return (
            "x-www-form-urlencoded" in ctype
            or (not ctype and self.method == "POST")
        )

    def parameters(self) -> list[tuple[str, str]]:
        """Ordered, still-encoded ``(name, value)`` pairs of the payload."""
        return parse_query(self.flat_payload())

    def url(self) -> str:
        """Reassemble the request URL (scheme-less)."""
        if self.query:
            return f"{self.host}{self.path}?{self.query}"
        return f"{self.host}{self.path}"

    @classmethod
    def from_url(
        cls,
        url: str,
        *,
        method: str = "GET",
        label: str | None = None,
    ) -> "HttpRequest":
        """Build a request from a URL string."""
        host, path, query = split_url(url)
        return cls(method=method.upper(), host=host, path=path, query=query, label=label)

    @classmethod
    def parse(cls, raw: str, *, label: str | None = None) -> "HttpRequest":
        """Parse a raw HTTP/1.x request string.

        Tolerates both ``\\r\\n`` and ``\\n`` line endings.  Raises
        :class:`RequestParseError` on a malformed request line.
        """
        text = raw.replace("\r\n", "\n")
        if "\n\n" in text:
            head, body = text.split("\n\n", 1)
        else:
            head, body = text, ""
        lines = head.split("\n")
        parts = lines[0].split()
        if len(parts) < 2:
            raise RequestParseError(f"malformed request line: {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            if ":" not in line:
                raise RequestParseError(f"malformed header line: {line!r}")
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
        host, path, query = split_url(target)
        if host in ("", "/") or target.startswith("/"):
            host = headers.get("host", "localhost").split(":")[0]
            _, path, query = split_url("x://" + headers.get("host", "localhost") + target)
        return cls(
            method=method,
            host=host,
            path=path,
            query=query,
            headers=headers,
            body=body.strip("\n"),
            label=label,
        )

    def to_raw(self) -> str:
        """Serialize back to a raw HTTP/1.1 request string."""
        target = self.path + (f"?{self.query}" if self.query else "")
        lines = [f"{self.method} {target} HTTP/1.1", f"Host: {self.host}"]
        for name, value in self.headers.items():
            if name == "host":
                continue
            lines.append(f"{name.title()}: {value}")
        raw = "\r\n".join(lines) + "\r\n\r\n"
        if self.body:
            raw += self.body
        return raw
