"""Trace persistence: save and load traffic traces as JSONL.

The paper's evaluation hinges on replayable traces (the 1-week benign
capture, the SQLmap and Arachni runs).  This module gives the library the
equivalent capability: a line-per-request JSONL format that round-trips
:class:`~repro.http.request.HttpRequest` exactly, streams (no whole-file
memory requirement), and fails loudly with a line number on corruption.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from typing import IO

from repro.http.request import HttpRequest
from repro.http.traffic import Trace

FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed (includes the line number)."""


def _request_to_record(request: HttpRequest) -> dict:
    record = {
        "method": request.method,
        "host": request.host,
        "path": request.path,
        "query": request.query,
    }
    if request.headers:
        record["headers"] = request.headers
    if request.body:
        record["body"] = request.body
    if request.label is not None:
        record["label"] = request.label
    return record


def _record_to_request(record: dict) -> HttpRequest:
    return HttpRequest(
        method=record.get("method", "GET"),
        host=record.get("host", "localhost"),
        path=record.get("path", "/"),
        query=record.get("query", ""),
        headers=dict(record.get("headers", {})),
        body=record.get("body", ""),
        label=record.get("label"),
    )


def dump_trace(trace: Trace, handle: IO[str]) -> None:
    """Write *trace* to an open text handle, one JSON record per line.

    The first line is a header record carrying the format version and the
    trace name.
    """
    header = {"format": FORMAT_VERSION, "name": trace.name,
              "requests": len(trace)}
    handle.write(json.dumps(header) + "\n")
    for request in trace:
        handle.write(json.dumps(_request_to_record(request)) + "\n")


def save_trace(trace: Trace, path: str) -> None:
    """Write *trace* to *path* (see :func:`dump_trace`)."""
    with open(path, "w") as handle:
        dump_trace(trace, handle)


def iter_trace(handle: IO[str]) -> Iterator[HttpRequest]:
    """Stream requests from an open trace file.

    Raises :class:`TraceFormatError` on a bad header or corrupt line.
    """
    header_line = handle.readline()
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"line 1: bad header: {exc}") from exc
    if header.get("format") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format {header.get('format')!r}"
        )
    for line_number, line in enumerate(handle, start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {line_number}: corrupt record: {exc}"
            ) from exc
        yield _record_to_request(record)


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path) as handle:
        header = json.loads(handle.readline() or "null")
        if not isinstance(header, dict) or header.get("format") != (
            FORMAT_VERSION
        ):
            raise TraceFormatError(f"{path}: not a trace file")
        name = header.get("name", "trace")
        handle.seek(0)
        requests = list(iter_trace(handle))
    return Trace(name=name, requests=requests)
