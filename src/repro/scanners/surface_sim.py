"""Multi-surface scanner simulator.

The paper's three scanners attack where its extraction looks: query
strings and form bodies.  Modern scanners (Burp's active scan, OWASP
ZAP's input-vector options) also inject through JSON bodies, cookies,
headers, and multipart fields — the channels :mod:`repro.surfaces`
exists to cover.  This simulator sprays a compact tautology/union/error
battery through each non-legacy channel against the same vulnerable
application, producing an attack trace that a legacy (query+form)
detector scores near zero on and a full-surface detector should catch.

The application's feedback loop is channel-agnostic — ``handle(path,
parameter, value)`` models the server-side sink, and a cookie or JSON
field reaching SQL behaves exactly like a query parameter reaching SQL.
"""

from __future__ import annotations

import json

from repro.http.request import HttpRequest
from repro.http.traffic import LABEL_ATTACK, Trace
from repro.scanners.base import ScannerBase

#: Delivery channels this scanner rotates through (one full battery per
#: channel per injection point).
SURFACE_CHANNELS = ("json-body", "cookie", "header", "multipart")

_PROBES = (
    "{base}' OR {n}={n}-- ",
    "{base}\" OR \"{n}\"=\"{n}",
    "{base}' UNION SELECT {cols}-- ",
    "{base}'; DROP TABLE probes--",
    "{base}' AND SLEEP(2)-- ",
)


class SurfaceScanner(ScannerBase):
    """Burp/ZAP-style injection through non-legacy request surfaces."""

    name = "surface"

    def __init__(self, app, seed: int = 0, post_fraction: float = 0.0):
        # post_fraction is meaningless here (no probe uses the form
        # body) but kept for the ScannerBase constructor contract.
        super().__init__(app, seed=seed, post_fraction=post_fraction)

    def encode_value(self, value: str) -> str:
        """Non-query channels carry the value raw — no URL encoding."""
        return value

    # -- channel builders ---------------------------------------------

    def _json_request(self, path: str, parameter: str, value: str):
        body = json.dumps(
            {parameter: value, "page": self.random_int(1, 20)},
            separators=(",", ":"),
        )
        return HttpRequest(
            method="POST", host="victim.test", path=path,
            headers={"content-type": "application/json"},
            body=body, label=LABEL_ATTACK,
        )

    def _cookie_request(self, path: str, parameter: str, value: str):
        return HttpRequest(
            host="victim.test", path=path,
            headers={"cookie": f"{parameter}={value}"},
            label=LABEL_ATTACK,
        )

    def _header_request(self, path: str, parameter: str, value: str):
        return HttpRequest(
            host="victim.test", path=path,
            headers={
                "user-agent": "Mozilla/5.0 (surface-scan)",
                "x-" + parameter: value,
            },
            label=LABEL_ATTACK,
        )

    def _multipart_request(self, path: str, parameter: str, value: str):
        boundary = f"----scan{self.random_int(10**6, 10**7 - 1)}"
        body = (
            f"--{boundary}\r\n"
            f'Content-Disposition: form-data; name="{parameter}"\r\n\r\n'
            f"{value}\r\n"
            f"--{boundary}--\r\n"
        )
        return HttpRequest(
            method="POST", host="victim.test", path=path,
            headers={
                "content-type": f"multipart/form-data; boundary={boundary}"
            },
            body=body, label=LABEL_ATTACK,
        )

    _BUILDERS = {
        "json-body": _json_request,
        "cookie": _cookie_request,
        "header": _header_request,
        "multipart": _multipart_request,
    }

    def send_via(self, channel: str, path: str, parameter: str, value: str):
        """Issue one probe through ``channel``; records the request and
        returns the application's response."""
        request = self._BUILDERS[channel](self, path, parameter, value)
        self._trace.append(request)
        return self.app.handle(path, parameter, value)

    # -- strategy -----------------------------------------------------

    def scan(self) -> Trace:
        """One probe battery per channel at every injection point."""
        for point in self.app.points:
            base = str(self.random_int(1, 999))
            n = self.random_int(11, 89)
            cols = ",".join(
                str(i + 1)
                for i in range(self.app.union_column_count(point.path))
            )
            for channel in SURFACE_CHANNELS:
                for template in _PROBES:
                    self.send_via(
                        channel, point.path, point.parameter,
                        template.format(base=base, n=n, cols=cols),
                    )
        return self.trace()
