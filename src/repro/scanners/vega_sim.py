"""Vega simulator.

Vega's SQL injection module alternates value-context probes (arithmetic
identities like ``1-0``, string concatenation probes) with quote breakers
and fixed tautologies, and it leaves payloads *minimally encoded* — raw
quotes and spaces-as-%20 on the wire.  Its battery is the smallest of the
three; its distinctive contributions are the arithmetic/no-keyword probes
that keyword-matching rulesets cannot see at all.
"""

from __future__ import annotations

from repro.http.traffic import Trace
from repro.scanners.base import ScannerBase

_VALUE_PROBES = (
    "{base}-0",
    "{base}-0-0",
    "{base}'||'",
    "{base}'+'",
    "0+{base}",
)

_QUOTE_PROBES = (
    "{base}'",
    "{base}''",
    "{base}\\'",
    "{base}%27",
    "{base}'--",
    "{base}');--",
)

_TAUTOLOGIES = (
    "{base}' OR {n}={n}-- ",
    "{base} OR {n}={n}",
    "{base}' OR 'vega'='vega",
    "{base}) OR ({n}={n}",
    "{base}' OR {n}>{m}-- ",
)

_EXTRACTION = (
    "{base} UNION SELECT {cols}",
    "{base}' UNION SELECT {cols}-- ",
    "{base}' AND ASCII(SUBSTRING(VERSION(),1,1))>51-- ",
    "{base}' AND LENGTH(DATABASE())>1-- ",
)


class VegaSimulator(ScannerBase):
    """Vega-style value/quote/tautology probing."""

    name = "vega"

    def encode_value(self, value: str) -> str:
        """Vega leaves most characters raw; only spaces become %20."""
        # Vega leaves most characters raw; only spaces become %20.
        return value.replace(" ", "%20")

    def scan(self) -> Trace:
        """Run the value/quote/tautology probes at every point."""
        for point in self.app.points:
            base = str(self.random_int(1, 999))
            n = self.random_int(11, 89)
            m = n - self.random_int(1, 10)
            cols = ",".join(
                str(i + 1)
                for i in range(self.app.union_column_count(point.path))
            )
            for template in _VALUE_PROBES + _QUOTE_PROBES:
                self.send(
                    point.path, point.parameter,
                    template.format(base=base),
                )
            for template in _TAUTOLOGIES:
                self.send(
                    point.path, point.parameter,
                    template.format(base=base, n=n, m=m),
                )
            for template in _EXTRACTION:
                self.send(
                    point.path, point.parameter,
                    template.format(base=base, cols=cols),
                )
        return self.trace()
