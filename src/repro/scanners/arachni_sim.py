"""Arachni simulator.

Arachni's sql_injection and sql_injection_timing checks throw a fixed,
small payload battery at every input — quote/backslash syntax breakers,
tautologies with textual operands, and stacked timing probes — and watch
for error signatures in the response.  Unlike sqlmap it does not adapt to
the application (no column bisection), and it sends spaces as ``+``
(Ruby's form encoding), which matters to single-decode detectors.
"""

from __future__ import annotations

from repro.http.traffic import Trace
from repro.http.url import quote
from repro.scanners.base import ScannerBase

#: Arachni's static sql_injection payload seeds (per injection variant).
_SYNTAX_BREAKERS = (
    "'`--",
    "''`--",
    "\"'`--",
    "--',\"",
    ";`'\"",
)

_TAUTOLOGIES = (
    "' or '1'='1",
    "' or 'x'='x",
    "\" or \"x\"=\"x",
    "') or ('x')=('x",
    "1' or '1'='1",
    "' or username like '%",
    "' or 1=1--",
    "\" or 1=1--",
    "or 1=1--",
)

_TIMING = (
    "';select sleep({n});--",
    "';select benchmark({big},md5('A'));--",
    "' and sleep({n})='",
    "\" and sleep({n})=\"",
    "1 or sleep({n})",
)

_ERROR_PROBES = (
    "' union select null-- ",
    "' union select null,null-- ",
    "' union select null,null,null-- ",
    "' group by 1-- ",
    "' having 1=1-- ",
)


class ArachniSimulator(ScannerBase):
    """Static-battery scan in the style of Arachni's SQLi checks."""

    name = "arachni"

    def encode_value(self, value: str) -> str:
        """Ruby form encoding: spaces become '+', specials percent-encode."""
        # Ruby form encoding: spaces become '+', specials percent-encode.
        return quote(value).replace("%20", "+")

    def scan(self) -> Trace:
        """Throw the static battery at every injection point."""
        for point in self.app.points:
            base = str(self.random_int(1, 999))
            # Arachni injects each seed in two variants: appended to the
            # original value and replacing it outright.
            for breaker in _SYNTAX_BREAKERS:
                self.send(point.path, point.parameter, base + breaker)
                self.send(point.path, point.parameter, breaker)
            for tautology in _TAUTOLOGIES:
                self.send(point.path, point.parameter, base + tautology)
                self.send(point.path, point.parameter, tautology)
            for probe in _ERROR_PROBES:
                self.send(point.path, point.parameter, base + probe)
            n = self.random_int(4, 9)
            big = n * 1_000_000
            for template in _TIMING:
                payload = template.format(n=n, big=big)
                self.send(point.path, point.parameter, base + payload)
                self.send(point.path, point.parameter, payload)
        return self.trace()
