"""Scanner simulators: the SQLmap and Arachni(+Vega) test-set generators."""

from repro.scanners.arachni_sim import ArachniSimulator
from repro.scanners.base import ScannerBase
from repro.scanners.sqlmap_sim import SqlmapSimulator
from repro.scanners.surface_sim import SURFACE_CHANNELS, SurfaceScanner
from repro.scanners.vega_sim import VegaSimulator

__all__ = [
    "ScannerBase",
    "SqlmapSimulator",
    "ArachniSimulator",
    "VegaSimulator",
    "SurfaceScanner",
    "SURFACE_CHANNELS",
]
