"""Common scanner machinery.

Section III-B builds two TPR test sets by running real scanners (SQLmap;
Arachni and Vega) against a vulnerable application.  "The use of three
different tools ... with their different methods for generation of attack
samples, was important to our evaluation strategy to assess the generality
of pSigene."  Each simulator here implements a distinct generation
strategy and drives the simulated application's feedback loop (errors,
boolean differences, timing) the way its real counterpart does.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.webapp import VulnerableWebApp
from repro.http.request import HttpRequest
from repro.http.traffic import LABEL_ATTACK, Trace
from repro.http.url import quote


class ScannerBase:
    """Shared request plumbing for the scanner simulators.

    Args:
        app: the target application.
        seed: randomization seed (payload ordering, random markers).
        post_fraction: fraction of probes delivered as POST form bodies
            instead of query strings — real scanners attack forms too
            (the paper's threat model is form input reaching SQL), and
            the detectors must inspect the form-encoded body path.
    """

    name = "scanner"

    def __init__(
        self,
        app: VulnerableWebApp,
        seed: int = 0,
        post_fraction: float = 0.15,
    ) -> None:
        if not 0.0 <= post_fraction <= 1.0:
            raise ValueError("post_fraction must be in [0, 1]")
        self.app = app
        self.rng = np.random.default_rng(seed)
        self.post_fraction = post_fraction
        self._trace = Trace(name=f"{self.name}-test")

    # -- plumbing -----------------------------------------------------------

    def encode_value(self, value: str) -> str:
        """Wire encoding of a payload value; scanners differ here and the
        difference is detector-visible (single-decode engines miss ``+``
        and double encodes)."""
        return quote(value)

    def send(self, path: str, parameter: str, value: str):
        """Issue one probe; records the request and returns the response."""
        encoded = self.encode_value(value)
        if self.rng.random() < self.post_fraction:
            request = HttpRequest(
                method="POST",
                host="victim.test",
                path=path,
                headers={
                    "content-type": "application/x-www-form-urlencoded"
                },
                body=f"{parameter}={encoded}",
                label=LABEL_ATTACK,
            )
        else:
            request = HttpRequest(
                host="victim.test",
                path=path,
                query=f"{parameter}={encoded}",
                label=LABEL_ATTACK,
            )
        self._trace.append(request)
        return self.app.handle(path, parameter, value)

    def random_int(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] from the scanner's RNG."""
        return int(self.rng.integers(low, high + 1))

    def trace(self) -> Trace:
        """All probes issued so far, in order."""
        return self._trace

    # -- strategy hook --------------------------------------------------------

    def scan(self) -> Trace:
        """Run the full scan and return the attack trace."""
        raise NotImplementedError
