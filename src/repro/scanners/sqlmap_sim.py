"""SQLmap simulator.

Reproduces SQLmap's probing strategy faithfully enough that the resulting
trace has SQLmap's *texture*: randomized four-digit boolean pairs
(``AND 7423=7423``), quote/paren prefix battery, ORDER BY column
bisection, ``UNION ALL SELECT NULL,...`` sweeps with hex marker strings
(``0x716b6a7a71`` — sqlmap's ``qkjzq``-style start/end markers), error-based
``EXTRACTVALUE``/``AND (SELECT ... FROM(SELECT COUNT(*)...))`` probes, and
``AND SLEEP(5)`` / ``BENCHMARK`` timing probes.  Section III-B: SQLmap
against the 136-vulnerability application produced "over 7200 attack
samples"; the simulator lands in the same range (~55 probes per point).

Payloads go out percent-encoded with ``%20`` spaces, the way sqlmap puts
them on the wire.
"""

from __future__ import annotations

from repro.http.traffic import Trace
from repro.http.url import quote
from repro.scanners.base import ScannerBase


class SqlmapSimulator(ScannerBase):
    """Level-1/risk-1 style sqlmap scan of every injection point.

    Args:
        app: target application.
        seed: probe randomization seed.
        tamper_fraction: fraction of probes sent through one of sqlmap's
            stock tamper scripts (``space2comment``, ``doubleencode``,
            ``charunicodeencode``).  Tampered probes survive a full
            normalization pipeline but slip past single-pass-decode
            matchers — the behaviour that separates ModSecurity/pSigene
            from Snort/Bro in Table V.
    """

    name = "sqlmap"

    def __init__(self, app, seed: int = 0, tamper_fraction: float = 0.12):
        super().__init__(app, seed)
        if not 0.0 <= tamper_fraction <= 1.0:
            raise ValueError("tamper_fraction must be in [0, 1]")
        self.tamper_fraction = tamper_fraction

    def encode_value(self, value: str) -> str:
        """sqlmap wire format: percent-encoded specials, %20 spaces."""
        # sqlmap percent-encodes specials; spaces become %20.
        return quote(value)

    def _tamper(self, value: str) -> str:
        """Apply one stock tamper script."""
        choice = self.random_int(0, 2)
        if choice == 0:  # space2comment
            return value.replace(" ", "/**/")
        if choice == 1:  # doubleencode (the outer quote() adds the 2nd layer)
            return (
                value.replace("'", "%27").replace('"', "%22")
                .replace(" ", "%20")
            )
        # charunicodeencode: IIS-style %uXXXX escapes for the break chars
        return (
            value.replace("'", "%u0027").replace('"', "%u0022")
            .replace(";", "%u003b")
        )

    def send(self, path: str, parameter: str, value: str):
        """Issue a probe, tampering a configured fraction of them."""
        if self.rng.random() < self.tamper_fraction:
            value = self._tamper(value)
        return super().send(path, parameter, value)

    # -- payload batteries ----------------------------------------------------

    def _marker(self) -> str:
        """sqlmap-style random hex string marker (e.g. 0x716b6a7a71)."""
        letters = "abcdefghijklmnopqrstuvwxyz"
        inner = "".join(
            letters[self.random_int(0, 25)] for _ in range(3)
        )
        text = f"q{inner}q"
        return "0x" + text.encode().hex()

    def _boolean_battery(self, base: str) -> list[str]:
        n = self.random_int(1000, 9999)
        m = n + self.random_int(1, 77)
        prefixes = ("", "'", "')", "'))", ")")
        payloads = []
        for prefix in prefixes:
            suffix = "-- -" if prefix else ""
            payloads.append(f"{base}{prefix} AND {n}={n}{suffix}".strip())
            payloads.append(f"{base}{prefix} AND {n}={m}{suffix}".strip())
        payloads.append(f"{base}' AND '{n}'='{n}")
        payloads.append(f"{base}' AND '{n}'='{m}")
        return payloads

    def _order_by_bisection(self, path: str, parameter: str, base: str) -> None:
        """Column-count search exactly as sqlmap does: probe, then bisect."""
        low, high = 1, 10
        while low < high:
            mid = (low + high + 1) // 2
            response = self.send(
                path, parameter, f"{base}' ORDER BY {mid}-- -"
            )
            if "error" in response.body.lower() or response.status >= 500:
                high = mid - 1
            else:
                low = mid

    def _union_battery(self, base: str, columns: int) -> list[str]:
        marker = self._marker()
        payloads = []
        for width in range(max(1, columns - 1), columns + 2):
            nulls = ",".join(["NULL"] * width)
            payloads.append(
                f"{base}' UNION ALL SELECT {nulls}-- -"
            )
        cells = ["NULL"] * columns
        cells[self.random_int(0, max(0, columns - 1))] = (
            f"CONCAT({marker},IFNULL(CAST(CURRENT_USER() AS CHAR),0x20),"
            f"{marker})"
        )
        payloads.append(f"{base}' UNION ALL SELECT {','.join(cells)}-- -")
        payloads.append(
            f"{base}' UNION ALL SELECT {','.join(cells)} FROM "
            f"INFORMATION_SCHEMA.TABLES-- -"
        )
        return payloads

    def _error_battery(self, base: str) -> list[str]:
        marker = self._marker()
        n = self.random_int(1000, 9999)
        return [
            f"{base}' AND EXTRACTVALUE({n},CONCAT(0x5c,{marker},"
            f"(SELECT (ELT({n}={n},1))),{marker}))-- -",
            f"{base}' AND (SELECT {n} FROM(SELECT COUNT(*),CONCAT({marker},"
            f"(SELECT (ELT({n}={n},1))),{marker},FLOOR(RAND(0)*2))x FROM "
            f"INFORMATION_SCHEMA.PLUGINS GROUP BY x)a)-- -",
            f"{base}' AND UPDATEXML({n},CONCAT(0x2e,{marker},"
            f"(SELECT (ELT({n}={n},1))),{marker}),{n})-- -",
        ]

    def _time_battery(self, base: str) -> list[str]:
        n = self.random_int(1000, 9999)
        return [
            f"{base}' AND SLEEP(5)-- -",
            f"{base}' AND (SELECT * FROM (SELECT(SLEEP(5)))bAKL)-- -",
            f"{base}' OR SLEEP(5)-- -",
            f"{base}' AND {n}=BENCHMARK(5000000,MD5(0x41))-- -",
            f"{base}' RLIKE SLEEP(5)-- -",
        ]

    def _stacked_battery(self, base: str) -> list[str]:
        return [
            f"{base}';SELECT SLEEP(5)-- -",
            f"{base}';SELECT BENCHMARK(5000000,MD5(0x42))-- -",
        ]

    def _blind_extraction(self, path: str, parameter: str, base: str) -> None:
        """Boolean-blind character bisection, sqlmap's exploitation phase.

        Real sqlmap issues hundreds of these once a boolean point confirms;
        the simulator caps the battery at one bisection of the first
        character of ``CURRENT_USER()`` plus a couple of length probes.
        """
        n = self.random_int(1000, 9999)
        self.send(path, parameter,
                  f"{base}' AND LENGTH(CURRENT_USER())>{self.random_int(1, 9)}"
                  f"-- -")
        self.send(path, parameter,
                  f"{base}' AND LENGTH(DATABASE())>{self.random_int(1, 9)}-- -")
        for position in range(1, 18):
            mid = self.random_int(48, 122)
            self.send(
                path, parameter,
                f"{base}' AND ORD(MID((SELECT IFNULL(CAST(CURRENT_USER() AS "
                f"CHAR),0x20)),{position},1))>{mid} AND {n}={n}-- -",
            )

    # -- scan ----------------------------------------------------------------

    def scan(self) -> Trace:
        """Run the full adaptive battery against every injection point."""
        for point in self.app.points:
            base = str(self.random_int(1, 999))
            # Heuristic syntax probes first, like sqlmap's parameter check.
            for probe in ("'", "')", '"', "'\""):
                self.send(point.path, point.parameter, base + probe)
            for payload in self._boolean_battery(base):
                self.send(point.path, point.parameter, payload)
            self._order_by_bisection(point.path, point.parameter, base)
            columns = self.app.union_column_count(point.path)
            for payload in self._union_battery(base, columns):
                self.send(point.path, point.parameter, payload)
            for payload in self._error_battery(base):
                self.send(point.path, point.parameter, payload)
            for payload in self._time_battery(base):
                self.send(point.path, point.parameter, payload)
            for payload in self._stacked_battery(base):
                self.send(point.path, point.parameter, payload)
            self._blind_extraction(point.path, point.parameter, base)
        return self.trace()
