"""Command-line interface: ``python -m repro <command>``.

Commands:
    train    run the four-phase pipeline and write a signature JSON file
    score    score payloads (args or stdin) against a signature file
    crawl    run phase 1 alone and print crawl statistics
    eval     small-scale Table V (accuracy comparison of all detectors)
    serve    run the online detection gateway (TCP/HTTP, hot reload);
             ``--shards N`` runs a supervised multi-process fleet
    loadgen  replay attack+benign traffic against a gateway or fleet
    obs      observability: dump /metrics, validate run manifests
    conform  differential conformance: oracle runs, golden corpora
    match    fused matching engine: benchmark it, explain its plan
    canary   closed-loop continual learning: run a shadow-scored,
             gate-promoted retraining round; inspect the history

Shared options (``--seed``, ``--workers``, ``-s/--signatures``) are
declared once as parent parsers, so their spelling and defaults are
identical across every subcommand that takes them.
"""

from __future__ import annotations

import argparse
import sys

COMMAND_EPILOG = """\
commands:
  train    run the four-phase pipeline and write a signature JSON file
  score    score payloads (args or stdin) against a signature file
  crawl    run phase 1 alone and print crawl statistics
  eval     run the small-scale Table V accuracy comparison
  serve    run the online detection gateway (--shards N for a fleet)
  loadgen  replay traffic at a gateway or fleet, report throughput
  obs      dump a gateway's /metrics or validate a run manifest
  conform  run the differential oracle, record/diff golden corpora
  match    benchmark the fused matching engine or explain its plan
  canary   run one continual-learning round, or inspect its history

run `repro <command> --help` for per-command options.
"""

_DETECTOR_CHOICES = (
    "psigene", "modsecurity", "snort", "snort-et", "bro",
)


def _build_detector(name: str, signatures: str | None):
    """Detector + default-reload-path for ``--detector``/``-s``."""
    if name == "psigene":
        if signatures is None:
            raise SystemExit(
                "repro: --detector psigene needs a signature file (-s)"
            )
        from repro.core import signature_set_from_json
        from repro.ids import PSigeneDetector

        try:
            with open(signatures) as handle:
                serialized = handle.read()
        except FileNotFoundError:
            raise SystemExit(
                f"repro: signature file {signatures!r} not found; "
                "train one first (repro train) or pass -s"
            ) from None
        return (
            PSigeneDetector(signature_set_from_json(serialized)),
            signatures,
        )
    from repro.ids.rulesets import (
        build_bro_ruleset,
        build_merged_snort_et_ruleset,
        build_modsec_ruleset,
        build_snort_ruleset,
    )

    builders = {
        "modsecurity": build_modsec_ruleset,
        "snort": build_snort_ruleset,
        "snort-et": build_merged_snort_et_ruleset,
        "bro": build_bro_ruleset,
    }
    return builders[name](), None


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import (
        PipelineConfig,
        PSigenePipeline,
        signature_set_to_json,
    )

    config = PipelineConfig(
        seed=args.seed,
        n_attack_samples=args.samples,
        n_benign_train=args.benign,
        max_cluster_rows=args.max_cluster_rows,
        workers=args.workers,
        manifest_dir=args.manifest_dir or None,
    )
    result = PSigenePipeline(config).run()
    with open(args.output, "w") as handle:
        handle.write(signature_set_to_json(result.signature_set))
    print(
        f"trained {len(result.signature_set)} signatures from "
        f"{len(result.samples)} crawled samples "
        f"({result.pruning.final_features} active features); "
        f"wrote {args.output}"
    )
    if result.manifest_path is not None:
        print(f"run manifest: {result.manifest_path}")
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    from repro.core import signature_set_from_json

    try:
        with open(args.signatures) as handle:
            signature_set = signature_set_from_json(handle.read())
    except FileNotFoundError:
        raise SystemExit(
            f"repro: signature file {args.signatures!r} not found; "
            "train one first (repro train) or pass -s"
        ) from None
    # rstrip both separators: CRLF input would otherwise leave a carriage
    # return inside the payload, changing normalization (and thus scores)
    # between piped and argv invocations.
    payloads = args.payloads or [
        line.rstrip("\r\n") for line in sys.stdin if line.strip()
    ]
    from repro.surfaces import LEGACY_SURFACES, parse_surfaces

    try:
        surfaces = parse_surfaces(args.surfaces)
    except ValueError as error:
        raise SystemExit(f"repro: {error}") from None
    if surfaces != LEGACY_SURFACES:
        # Surface-aware scoring: each payload becomes a query-only
        # request scored through the surface extractor, so selections
        # like --surfaces all report per-surface attribution.
        from repro.http import HttpRequest
        from repro.ids import PSigeneDetector

        detector = PSigeneDetector(signature_set)
        exit_code = 0
        for payload in payloads:
            detection = detector.inspect_request(
                HttpRequest(query=payload), surfaces
            )
            if detection.alert:
                attributed = ",".join(
                    s.value for s in detection.alerting_surfaces
                )
                print(
                    f"[ALERT] p={detection.score:0.4f} "
                    f"surfaces={attributed} "
                    f"signatures={detection.matched_sids}  {payload}"
                )
                exit_code = 3
            else:
                print(f"[pass ] p={detection.score:0.4f}  {payload}")
        return exit_code
    if args.workers > 1:
        from repro.http import HttpRequest, Trace
        from repro.ids import PSigeneDetector, SignatureEngine

        engine = SignatureEngine(PSigeneDetector(signature_set))
        trace = Trace(
            name="cli",
            requests=[HttpRequest(query=p) for p in payloads],
        )
        run = engine.run_batch(trace, workers=args.workers)
        by_index = {alert.request_index: alert for alert in run.alerts}
        exit_code = 0
        for index, payload in enumerate(payloads):
            alert = by_index.get(index)
            score = float(run.scores[index])
            if alert is not None:
                print(
                    f"[ALERT] p={score:0.4f} "
                    f"signatures={alert.matched}  {payload}"
                )
                exit_code = 3
            else:
                print(f"[pass ] p={score:0.4f}  {payload}")
        return exit_code
    exit_code = 0
    for payload in payloads:
        score, fired = signature_set.evaluate(payload)
        verdict = "ALERT" if fired else "pass "
        detail = f" signatures={fired}" if fired else ""
        print(f"[{verdict}] p={score:0.4f}{detail}  {payload}")
        if fired:
            exit_code = 3
    return exit_code


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.crawler import CrawlSession, SimulatedWeb

    web = SimulatedWeb(corpus_size=args.samples, seed=args.seed)
    report = CrawlSession(web).run()
    print(f"pages fetched: {report.pages_fetched}")
    print(f"blocked by robots: {report.pages_blocked}")
    print(f"payloads extracted: {report.payloads_seen}")
    print(f"unique samples: {len(report.samples)}")
    for portal, count in sorted(report.per_portal.items()):
        print(f"  {portal}: {count}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.eval import (
        EvaluationContext,
        format_table,
        percent,
        table5_accuracy,
    )

    context = EvaluationContext.build(
        seed=args.seed,
        n_attack_samples=args.samples,
        n_benign_train=min(args.samples * 3, 10_000),
        n_benign_test=args.benign,
        max_cluster_rows=min(args.samples, 1500),
        n_vulnerabilities=args.vulnerabilities,
        workers=args.workers,
    )
    rows = table5_accuracy(context)
    print(format_table(
        ["RULES", "TPR%(SQLmap)", "TPR%(Arachni)", "FPR%"],
        [
            [r["rules"], percent(r["tpr_sqlmap"]),
             percent(r["tpr_arachni"]), percent(r["fpr"], 4)]
            for r in rows
        ],
        title="Accuracy comparison (Table V)",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import DetectionGateway, GatewayConfig, SignatureStore

    from repro.surfaces import parse_surfaces

    try:
        surfaces = parse_surfaces(args.surfaces)
    except ValueError as error:
        raise SystemExit(f"repro: {error}") from None
    detector, reload_path = _build_detector(args.detector, args.signatures)
    source = f"file:{reload_path}" if reload_path is not None else "static"
    if args.shards > 1:
        from repro.serve import FleetConfig, FleetSupervisor

        supervisor = FleetSupervisor(
            detector,
            FleetConfig(
                shards=args.shards,
                host=args.host,
                port=args.port,
                control_port=args.control_port,
                queue_bound=args.queue_bound,
                policy=args.policy,
                workers=args.serve_workers,
                max_inflight_per_connection=args.max_inflight,
                signature_path=reload_path,
                surfaces=args.surfaces,
            ),
            source=source,
        )
        try:
            asyncio.run(supervisor.serve_forever())
        except KeyboardInterrupt:
            print("repro.serve.fleet: draining and shutting down")
        return 0
    store = SignatureStore(
        detector,
        path=reload_path,
        source=source,
    )
    gateway = DetectionGateway(store, GatewayConfig(
        host=args.host,
        port=args.port,
        queue_bound=args.queue_bound,
        policy=args.policy,
        workers=args.serve_workers,
        max_inflight_per_connection=args.max_inflight,
        surfaces=surfaces,
    ))

    async def _serve() -> None:
        try:
            await gateway.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro.serve: draining and shutting down")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import (
        SignatureStore,
        build_load_trace,
        format_report,
        run_loadgen,
    )

    from repro.surfaces import LEGACY_SURFACES, parse_surfaces

    try:
        surfaces = parse_surfaces(args.surfaces)
    except ValueError as error:
        raise SystemExit(f"repro: {error}") from None
    framed = args.framed or surfaces != LEGACY_SURFACES
    detector, _ = _build_detector(args.detector, args.signatures)
    trace = build_load_trace(
        seed=args.seed,
        n_benign=args.benign,
        n_vulnerabilities=args.vulnerabilities,
    )
    payloads = trace.payloads()[: args.requests] or trace.payloads()
    if framed:
        if args.shards > 1:
            raise SystemExit(
                "repro: --framed/--surfaces loadgen drives a single "
                "gateway; drop --shards"
            )
        from repro.serve.loadgen import run_framed_loadgen

        requests = trace.requests[: args.requests] or trace.requests
        report = asyncio.run(run_framed_loadgen(
            SignatureStore(detector),
            requests,
            surfaces=surfaces,
            queue_bound=args.queue_bound,
            policy=args.policy,
            workers=args.serve_workers,
            connections=args.connections,
            window=args.window,
            check_parity=args.check_parity,
        ))
        print(format_report(report))
        if report.parity is not None and not report.parity.ok:
            return 4
        return 0
    if args.shards > 1:
        from repro.serve import format_fleet_report, run_fleet_loadgen

        fleet_report = asyncio.run(run_fleet_loadgen(
            detector,
            payloads,
            shards=args.shards,
            queue_bound=args.queue_bound,
            policy=args.policy,
            workers=args.serve_workers,
            connections=args.connections,
            window=args.window,
            rate=args.rate,
            slo_ms=args.slo_ms,
            check_parity=args.check_parity,
        ))
        print(format_fleet_report(fleet_report))
        if fleet_report.parity is not None and not fleet_report.parity.ok:
            return 4
        return 0
    store = SignatureStore(detector)
    report = asyncio.run(run_loadgen(
        store,
        payloads,
        queue_bound=args.queue_bound,
        policy=args.policy,
        workers=args.serve_workers,
        connections=args.connections,
        window=args.window,
        check_parity=args.check_parity,
    ))
    print(format_report(report))
    if report.parity is not None and not report.parity.ok:
        return 4
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    import http.client

    from repro.obs.prometheus import ExpositionError, parse_exposition

    connection = http.client.HTTPConnection(
        args.host, args.port, timeout=args.timeout
    )
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read().decode("utf-8")
    except OSError as error:
        raise SystemExit(
            f"repro: cannot scrape {args.host}:{args.port}/metrics: {error}"
        ) from None
    finally:
        connection.close()
    if response.status != 200:
        raise SystemExit(
            f"repro: /metrics returned HTTP {response.status}"
        )
    try:
        families = parse_exposition(body)
    except ExpositionError as error:
        raise SystemExit(
            f"repro: gateway served malformed exposition: {error}"
        ) from None
    sys.stdout.write(body)
    print(
        f"# repro obs: {len(families)} metric families, "
        f"{sum(len(samples) for samples in families.values())} samples",
        file=sys.stderr,
    )
    return 0


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    import json

    from repro.obs.manifest import ManifestError, validate_manifest

    try:
        with open(args.manifest) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            f"repro: manifest {args.manifest!r} not found"
        ) from None
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"repro: {args.manifest}: invalid JSON: {error}"
        ) from None
    try:
        validate_manifest(manifest)
    except ManifestError as error:
        print(f"INVALID {args.manifest}: {error}")
        return 5
    phases = ", ".join(
        phase["name"] for phase in manifest["phases"] if phase["depth"] <= 1
    )
    print(
        f"OK {args.manifest}: schema {manifest['schema']}, "
        f"git {manifest['git']}, seed {manifest['seed']}, "
        f"phases [{phases}]"
    )
    return 0


def _conform_detector(args: argparse.Namespace):
    """The detector a conformance command drives.

    With ``-s`` the signature file is mounted; without it a small
    deterministic pipeline is trained in-process (the canonical
    configuration golden corpora are recorded against).
    """
    if args.signatures is not None:
        detector, _ = _build_detector("psigene", args.signatures)
        return detector, f"file:{args.signatures}"
    from repro.conformance import train_default_detector

    print(
        f"repro conform: no -s given; training the canonical small "
        f"signature set (seed={args.seed})"
    )
    return train_default_detector(args.seed), f"trained:seed={args.seed}"


def _cmd_conform_run(args: argparse.Namespace) -> int:
    from repro.conformance import (
        Oracle,
        format_report,
        generate_corpus,
    )

    detector, source = _conform_detector(args)
    payloads = generate_corpus(seed=args.seed, budget=args.budget)
    print(
        f"repro conform: {len(payloads)} payloads "
        f"(budget={args.budget}, seed={args.seed}), detector {source}"
    )
    if args.path:
        from repro.conformance import SerialPath, default_paths

        registry = {p.name: p for p in default_paths()}
        try:
            selected = [registry[name] for name in args.path]
        except KeyError as missing:
            raise SystemExit(
                f"repro: unknown conformance path {missing.args[0]!r}; "
                f"valid: {', '.join(sorted(registry))}"
            ) from None
        oracle = Oracle(
            detector,
            paths=[SerialPath(), *selected],
            check_extraction=False,
        )
    else:
        oracle = Oracle(detector)
    report = oracle.run(payloads)
    print(format_report(report))
    exit_code = 0 if report.ok else 6
    if args.perdisci:
        from repro.corpus.grammar import CorpusGenerator
        from repro.perdisci.signatures import PerdisciSystem

        system = PerdisciSystem(seed=args.seed)
        system.fit([
            sample.payload
            for sample in CorpusGenerator(seed=args.seed).generate(
                max(64, len(payloads) // 3)
            )
        ])
        perdisci_report = Oracle(system, check_extraction=False).run(
            payloads
        )
        print(format_report(perdisci_report))
        if not perdisci_report.ok:
            exit_code = 6
    return exit_code


def _cmd_conform_record(args: argparse.Namespace) -> int:
    import os

    from repro.conformance import (
        generate_corpus,
        serial_verdicts,
        write_golden,
    )

    detector, source = _conform_detector(args)
    payloads = generate_corpus(seed=args.seed, budget=args.budget)
    output = args.output or os.path.join(
        "conformance", "golden", f"{args.budget}-seed{args.seed}.jsonl"
    )
    directory = os.path.dirname(output)
    if directory:
        os.makedirs(directory, exist_ok=True)
    write_golden(
        output,
        payloads,
        serial_verdicts(detector, payloads),
        detector=detector.name,
        seed=args.seed,
        budget=args.budget,
        extra={"source": source},
    )
    print(
        f"recorded {len(payloads)} verdicts "
        f"(budget={args.budget}, seed={args.seed}) to {output}"
    )
    return 0


def _cmd_conform_diff(args: argparse.Namespace) -> int:
    from repro.conformance import (
        GoldenError,
        diff_golden,
        read_golden,
        serial_verdicts,
    )

    try:
        golden = read_golden(args.golden)
    except FileNotFoundError:
        raise SystemExit(
            f"repro: golden corpus {args.golden!r} not found; "
            "record one first (repro conform record)"
        ) from None
    except GoldenError as error:
        raise SystemExit(f"repro: {error}") from None
    args.seed = golden.meta.get("seed", args.seed)
    detector, _ = _conform_detector(args)
    divergences = diff_golden(
        golden, serial_verdicts(detector, golden.payloads)
    )
    if not divergences:
        print(
            f"GOLDEN OK: {len(golden)} recorded verdicts reproduced "
            f"({args.golden})"
        )
        return 0
    print(
        f"GOLDEN DIVERGENT: {len(divergences)} disagreement(s) "
        f"against {args.golden}"
    )
    for divergence in divergences[:20]:
        print(f"  ! {divergence.describe()}")
    if len(divergences) > 20:
        print(f"  ... and {len(divergences) - 20} more")
    return 6


def _cmd_match_bench(args: argparse.Namespace) -> int:
    from repro.conformance import generate_corpus
    from repro.match import bench_fused_matching, fused_enabled

    if not fused_enabled():
        print(
            "repro match: fused engine is disabled (REPRO_FUSED=0); "
            "the bench would time the legacy path against itself"
        )
        return 2
    detector, source = _conform_detector(args)
    payloads = generate_corpus(seed=args.seed, budget=args.budget)
    print(
        f"repro match: {len(payloads)} payloads "
        f"(budget={args.budget}, seed={args.seed}), detector {source}"
    )
    result = bench_fused_matching(
        detector.signature_set, payloads, repeats=args.repeats
    )
    print(
        f"  legacy  {result.legacy_us_per_request:8.1f} us/req\n"
        f"  fused   {result.fused_us_per_request:8.1f} us/req "
        f"(p50 {result.fused_p50_us:.1f}, p95 {result.fused_p95_us:.1f})\n"
        f"  speedup {result.speedup:8.2f}x over "
        f"{result.signatures} signatures / {result.patterns} patterns\n"
        f"  verdicts identical: {result.identical}"
    )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(result.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0 if result.identical else 7


def _cmd_match_explain(args: argparse.Namespace) -> int:
    from repro.match import fused_enabled, matcher_for_patterns

    detector, source = _conform_detector(args)
    signature_set = detector.signature_set
    index_of: dict[str, int] = {}
    for signature in signature_set.signatures:
        for definition in signature.features:
            if definition.pattern not in index_of:
                index_of[definition.pattern] = len(index_of)
    matcher = matcher_for_patterns(tuple(index_of))
    state = "on" if fused_enabled() else "off (REPRO_FUSED=0)"
    print(f"repro match: detector {source}, fused engine {state}")
    print(matcher.describe())
    if args.patterns:
        for plan in matcher.plans:
            detail = plan.literal or ",".join(plan.factors)
            suffix = f"  [{detail}]" if detail else ""
            print(f"  {plan.kind:>9}  {plan.pattern}{suffix}")
    return 0


def _print_canary_round(completed) -> None:
    shadow = completed.decision.shadow
    churn = completed.decision.churn
    print(
        f"round {completed.index}: {completed.outcome.upper()} "
        f"({completed.mode}, strategy={completed.strategy}, "
        f"gen {completed.generation_before} -> "
        f"{completed.generation_after})"
    )
    print(
        f"  tpr {shadow.incumbent_tpr:.4f} -> {shadow.candidate_tpr:.4f} "
        f"(delta {shadow.tpr_delta:+.4f}); "
        f"fpr {shadow.incumbent_fpr:.4f} -> {shadow.candidate_fpr:.4f} "
        f"(delta {shadow.fpr_delta:+.4f})"
    )
    print(
        f"  churn {churn.churn_fraction:.3f} "
        f"({churn.n_changed} changed, {churn.n_added} added, "
        f"{churn.n_removed} removed); "
        f"divergences {len(shadow.divergences)}; "
        f"drift out-of-cluster {completed.drift['out_of_cluster_rate']}"
    )
    if completed.decision.reasons:
        print(f"  rejected: {', '.join(completed.decision.reasons)}")
    walls = ", ".join(
        f"{stage}={seconds * 1000:.0f}ms"
        for stage, seconds in completed.stage_wall_s.items()
    )
    print(f"  stage walls: {walls}")


def _cmd_canary_run(args: argparse.Namespace) -> int:
    import asyncio

    from repro.canary import (
        CanaryConfig,
        CanaryLoop,
        GatePolicy,
        TrainingState,
    )
    from repro.ids import PSigeneDetector
    from repro.serve.store import SignatureStore

    print(
        f"repro canary: training the incumbent "
        f"(canonical small pipeline, seed={args.seed})"
    )
    state = TrainingState.train(args.seed)
    config = CanaryConfig(
        fresh_attacks=args.fresh,
        benign_replay=args.benign,
        shift=args.shift,
        seed=args.seed,
        drift_threshold=args.drift_threshold,
        refresh_strategy=args.strategy,
        policy=GatePolicy(
            fpr_budget=args.fpr_budget,
            tpr_tolerance=args.tpr_tolerance,
            max_churn_fraction=args.max_churn,
        ),
        runs_dir=args.runs_dir or None,
    )
    sabotage = None
    if args.inject_fpr:
        # CI's forced-reject round: a candidate that alerts on nearly
        # everything must blow the FPR budget and be turned away with
        # the incumbent provably untouched.
        sabotage = lambda s: s.with_threshold(0.05)  # noqa: E731
    if args.shards > 0:
        from repro.serve import FleetConfig, FleetSupervisor

        async def fleet_round():
            supervisor = FleetSupervisor(
                PSigeneDetector(state.signature_set),
                FleetConfig(shards=args.shards),
                source="canary:incumbent",
            )
            loop = CanaryLoop(state, supervisor.store, config=config)
            await supervisor.start()
            try:
                return await loop.run_round_fleet(
                    supervisor, sabotage=sabotage
                )
            finally:
                await supervisor.stop()

        completed = asyncio.run(fleet_round())
    else:
        store = SignatureStore(
            PSigeneDetector(state.signature_set), source="canary:incumbent"
        )
        loop = CanaryLoop(state, store, config=config)
        completed = loop.run_round(sabotage=sabotage)
    _print_canary_round(completed)
    if args.expect and args.expect != (
        "promote" if completed.promoted else "reject"
    ):
        print(
            f"repro canary: expected --expect {args.expect} but the "
            f"round was {completed.outcome}"
        )
        return 9
    return 0 if completed.promoted else 8


def _cmd_canary_status(args: argparse.Namespace) -> int:
    from repro.canary import HistoryError, read_history

    try:
        rounds = read_history(args.runs_dir)
    except HistoryError as error:
        raise SystemExit(f"repro: {error}") from None
    if not rounds:
        print(f"repro canary: no history under {args.runs_dir!r}")
        return 0
    promoted = sum(1 for r in rounds if r["outcome"] == "promoted")
    last = rounds[-1]
    print(
        f"{len(rounds)} round(s): {promoted} promoted, "
        f"{len(rounds) - promoted} rejected"
    )
    print(
        f"last: {last['outcome']} ({last['mode']}, "
        f"strategy={last['strategy']}, gen {last['generation_before']} "
        f"-> {last['generation_after']})"
        + (f", reasons: {', '.join(last['reasons'])}"
           if last["reasons"] else "")
    )
    return 0


def _cmd_canary_history(args: argparse.Namespace) -> int:
    import json

    from repro.canary import HistoryError, read_history

    try:
        rounds = read_history(args.runs_dir)
    except HistoryError as error:
        raise SystemExit(f"repro: {error}") from None
    if args.json:
        print(json.dumps(rounds, indent=2, sort_keys=True))
        return 0
    if not rounds:
        print(f"repro canary: no history under {args.runs_dir!r}")
        return 0
    for record in rounds:
        gate = record["gate"]["shadow"]
        line = (
            f"round {record['round']}: {record['outcome']} "
            f"({record['mode']}, {record['strategy']}, "
            f"gen {record['generation_before']} -> "
            f"{record['generation_after']}, "
            f"tpr {gate['tpr_delta']:+.4f}, fpr {gate['fpr_delta']:+.4f})"
        )
        if record["reasons"]:
            line += f" [{', '.join(record['reasons'])}]"
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="pSigene reproduction (DSN 2014) command line",
        epilog=COMMAND_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Parent parsers: one definition per shared option, so --seed,
    # --workers, and -s/--signatures are spelled and defaulted
    # identically everywhere they appear.
    seed_options = argparse.ArgumentParser(add_help=False)
    seed_options.add_argument(
        "--seed", type=int, default=2012,
        help="master RNG seed (default: 2012)",
    )
    worker_options = argparse.ArgumentParser(add_help=False)
    worker_options.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default: 1)",
    )
    signature_options = argparse.ArgumentParser(add_help=False)
    signature_options.add_argument(
        "-s", "--signatures", default="signatures.json",
        help="signature JSON file (default: signatures.json)",
    )
    surface_options = argparse.ArgumentParser(add_help=False)
    surface_options.add_argument(
        "--surfaces", default="query,form", metavar="LIST",
        help="injection surfaces to inspect, comma-separated from "
             "query,form,json,multipart,cookie,header,second-order "
             "or 'all' (default: query,form — the paper's legacy "
             "extraction)",
    )

    train = sub.add_parser(
        "train", help="train and export signatures",
        parents=[seed_options, worker_options],
    )
    train.add_argument("-o", "--output", default="signatures.json")
    train.add_argument("--samples", type=int, default=2000)
    train.add_argument("--benign", type=int, default=6000)
    train.add_argument("--max-cluster-rows", type=int, default=1200)
    train.add_argument(
        "--manifest-dir", default="",
        help="write a run manifest into this directory ('' disables; "
             "conventionally: runs)",
    )
    train.set_defaults(func=_cmd_train)

    score = sub.add_parser(
        "score", help="score payloads against signatures",
        parents=[worker_options, signature_options, surface_options],
    )
    score.add_argument("payloads", nargs="*")
    score.set_defaults(func=_cmd_score)

    crawl = sub.add_parser(
        "crawl", help="crawl the simulated portals",
        parents=[seed_options],
    )
    crawl.add_argument("--samples", type=int, default=1000)
    crawl.set_defaults(func=_cmd_crawl)

    evaluate = sub.add_parser(
        "eval", help="run the Table V comparison",
        parents=[seed_options, worker_options],
    )
    evaluate.add_argument("--samples", type=int, default=1500)
    evaluate.add_argument("--benign", type=int, default=8000)
    evaluate.add_argument("--vulnerabilities", type=int, default=40)
    evaluate.set_defaults(func=_cmd_eval)

    def add_gateway_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--detector", choices=_DETECTOR_CHOICES, default="psigene",
            help="which detector to mount (default: psigene)",
        )
        command.add_argument(
            "--queue-bound", type=int, default=1024,
            help="admission queue capacity (default: 1024)",
        )
        command.add_argument(
            "--policy", choices=("block", "shed", "cost"),
            default="block",
            help="full-queue behaviour (default: block); 'cost' sheds "
                 "expensive payloads first once the queue is congested",
        )
        command.add_argument(
            "--serve-workers", type=int, default=4,
            help="detector worker coroutines (default: 4)",
        )

    serve = sub.add_parser(
        "serve", help="run the online detection gateway",
        parents=[signature_options, surface_options],
    )
    add_gateway_options(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=9037,
        help="listen port; 0 picks an ephemeral one (default: 9037)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="pipelining window per connection (default: 64)",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="worker processes sharing the data port; >1 runs the "
             "supervised fleet (default: 1, single process)",
    )
    serve.add_argument(
        "--control-port", type=int, default=0,
        help="fleet control-plane HTTP port; 0 picks an ephemeral one "
             "(fleet mode only, default: 0)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="replay attack+benign traffic at a gateway",
        parents=[seed_options, signature_options, surface_options],
    )
    add_gateway_options(loadgen)
    loadgen.add_argument(
        "--requests", type=int, default=2000,
        help="payloads to replay (default: 2000)",
    )
    loadgen.add_argument(
        "--connections", type=int, default=8,
        help="concurrent client connections (default: 8)",
    )
    loadgen.add_argument(
        "--window", type=int, default=32,
        help="pipelined requests per connection (default: 32)",
    )
    loadgen.add_argument(
        "--benign", type=int, default=800,
        help="benign requests mixed into the trace (default: 800)",
    )
    loadgen.add_argument(
        "--vulnerabilities", type=int, default=12,
        help="webapp vulnerabilities the scanners probe (default: 12)",
    )
    loadgen.add_argument(
        "--check-parity", action=argparse.BooleanOptionalAction,
        default=True,
        help="diff responses against the offline engine (default: on)",
    )
    loadgen.add_argument(
        "--framed", action="store_true",
        help="replay whole requests in wire-format v2 frames with the "
             "--surfaces selection (implied by a non-legacy --surfaces; "
             "single-gateway mode only)",
    )
    loadgen.add_argument(
        "--shards", type=int, default=1,
        help="replay against a fleet of this many shard processes "
             "(default: 1, single in-process gateway)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=None,
        help="open-loop offered rate in req/s (fleet mode only; "
             "default: closed-loop capacity measurement)",
    )
    loadgen.add_argument(
        "--slo-ms", type=float, default=50.0,
        help="latency objective for SLO attainment (default: 50ms)",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    obs = sub.add_parser(
        "obs", help="observability: dump /metrics, validate manifests",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    dump = obs_sub.add_parser(
        "dump", help="scrape and strict-parse a gateway's /metrics",
    )
    dump.add_argument("--host", default="127.0.0.1")
    dump.add_argument(
        "--port", type=int, default=9037,
        help="gateway port (default: 9037)",
    )
    dump.add_argument(
        "--timeout", type=float, default=5.0,
        help="connect/read timeout in seconds (default: 5)",
    )
    dump.set_defaults(func=_cmd_obs_dump)
    validate = obs_sub.add_parser(
        "validate", help="check a run manifest against the schema",
    )
    validate.add_argument("manifest", help="path to a runs/<ts>.json file")
    validate.set_defaults(func=_cmd_obs_validate)

    conform = sub.add_parser(
        "conform",
        help="differential conformance: oracle runs, golden corpora",
    )
    conform_sub = conform.add_subparsers(dest="conform_command", required=True)

    conform_options = argparse.ArgumentParser(add_help=False)
    conform_options.add_argument(
        "--seed", type=int, default=2012,
        help="fuzz corpus / training seed (default: 2012)",
    )
    conform_options.add_argument(
        "-s", "--signatures", default=None,
        help="signature JSON file to mount (default: train the "
             "canonical small set in-process)",
    )
    budget_option = argparse.ArgumentParser(add_help=False)
    budget_option.add_argument(
        "--budget", choices=("small", "medium", "large"), default="small",
        help="fuzz corpus size (default: small)",
    )

    conform_run = conform_sub.add_parser(
        "run",
        help="fuzz a corpus and assert every detector path agrees",
        parents=[conform_options, budget_option],
    )
    conform_run.add_argument(
        "--perdisci", action=argparse.BooleanOptionalAction, default=True,
        help="also self-check the Perdisci baseline's paths (default: on)",
    )
    conform_run.add_argument(
        "--path", action="append", default=None, metavar="NAME",
        help="run only this path against the serial baseline "
             "(repeatable; e.g. gateway-framed, surfaces-legacy-parity; "
             "default: every registered path)",
    )
    conform_run.set_defaults(func=_cmd_conform_run)

    conform_record = conform_sub.add_parser(
        "record",
        help="snapshot baseline verdicts to a golden JSONL corpus",
        parents=[conform_options, budget_option],
    )
    conform_record.add_argument(
        "-o", "--output", default=None,
        help="snapshot path (default: "
             "conformance/golden/<budget>-seed<seed>.jsonl)",
    )
    conform_record.set_defaults(func=_cmd_conform_record)

    conform_diff = conform_sub.add_parser(
        "diff",
        help="recompute verdicts and diff them against a golden corpus",
        parents=[conform_options],
    )
    conform_diff.add_argument(
        "golden", help="path to a recorded golden .jsonl corpus",
    )
    conform_diff.set_defaults(func=_cmd_conform_diff)

    match = sub.add_parser(
        "match",
        help="fused matching engine: benchmark and plan inspection",
    )
    match_sub = match.add_subparsers(dest="match_command", required=True)
    match_bench = match_sub.add_parser(
        "bench",
        help="time fused vs legacy serial matching on a fuzz corpus",
        parents=[conform_options, budget_option],
    )
    match_bench.add_argument(
        "--repeats", type=int, default=5,
        help="timed passes per engine; best is kept (default: 5)",
    )
    match_bench.add_argument(
        "--json", default=None,
        help="also write the machine-readable result to this path",
    )
    match_bench.set_defaults(func=_cmd_match_bench)
    match_explain = match_sub.add_parser(
        "explain",
        help="print the fused engine's compiled plan census",
        parents=[conform_options],
    )
    match_explain.add_argument(
        "--patterns", action="store_true",
        help="also list every pattern with its planned tier",
    )
    match_explain.set_defaults(func=_cmd_match_explain)

    canary = sub.add_parser(
        "canary",
        help="closed-loop continual learning (shadow-score + gate)",
    )
    canary_sub = canary.add_subparsers(dest="canary_command", required=True)
    canary_run = canary_sub.add_parser(
        "run",
        help="one full ingest -> refresh -> shadow -> gate round; "
             "exit 0 promoted, 8 rejected, 9 --expect mismatch",
        parents=[seed_options],
    )
    canary_run.add_argument(
        "--fresh", type=int, default=200,
        help="fresh drifted attacks to ingest (default: 200)",
    )
    canary_run.add_argument(
        "--benign", type=int, default=400,
        help="benign payloads for FPR replay (default: 400)",
    )
    canary_run.add_argument(
        "--shift", type=float, default=3.0,
        help="drift magnitude of the fresh attack mix (default: 3.0)",
    )
    canary_run.add_argument(
        "--strategy", choices=("auto", "warm", "rebicluster"),
        default="auto",
        help="refresh strategy (default: auto — escalate on drift)",
    )
    canary_run.add_argument(
        "--drift-threshold", type=float, default=0.5,
        help="out-of-cluster rate at which auto re-biclusters "
             "(default: 0.5)",
    )
    canary_run.add_argument(
        "--fpr-budget", type=float, default=0.01,
        help="max candidate FPR on benign replay (default: 0.01)",
    )
    canary_run.add_argument(
        "--tpr-tolerance", type=float, default=0.0,
        help="allowed TPR regression on fresh attacks (default: 0.0)",
    )
    canary_run.add_argument(
        "--max-churn", type=float, default=1.0,
        help="max fraction of signatures changed/added/removed "
             "(default: 1.0)",
    )
    canary_run.add_argument(
        "--shards", type=int, default=0,
        help="run against a live N-shard fleet instead of an "
             "in-process store (default: 0 = store)",
    )
    canary_run.add_argument(
        "--inject-fpr", action="store_true",
        help="sabotage the candidate's threshold so it alerts on "
             "benign traffic — the gate must reject it (CI smoke)",
    )
    canary_run.add_argument(
        "--expect", choices=("promote", "reject"), default=None,
        help="fail with exit 9 unless the round ends this way",
    )
    canary_run.add_argument(
        "--runs-dir", default="runs",
        help="promotion-history directory ('' disables; default: runs)",
    )
    canary_run.set_defaults(func=_cmd_canary_run)
    canary_status = canary_sub.add_parser(
        "status", help="summarize the promotion history",
    )
    canary_status.add_argument("--runs-dir", default="runs")
    canary_status.set_defaults(func=_cmd_canary_status)
    canary_history = canary_sub.add_parser(
        "history", help="list every recorded round",
    )
    canary_history.add_argument("--runs-dir", default="runs")
    canary_history.add_argument(
        "--json", action="store_true",
        help="print the raw manifest records as JSON",
    )
    canary_history.set_defaults(func=_cmd_canary_history)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
