"""Command-line interface: ``python -m repro <command>``.

Commands:
    train   run the four-phase pipeline and write a signature JSON file
    score   score payloads (args or stdin) against a signature file
    crawl   run phase 1 alone and print crawl statistics
    eval    small-scale Table V (accuracy comparison of all detectors)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import (
        PipelineConfig,
        PSigenePipeline,
        signature_set_to_json,
    )

    config = PipelineConfig(
        seed=args.seed,
        n_attack_samples=args.samples,
        n_benign_train=args.benign,
        max_cluster_rows=args.max_cluster_rows,
        workers=args.workers,
    )
    result = PSigenePipeline(config).run()
    with open(args.output, "w") as handle:
        handle.write(signature_set_to_json(result.signature_set))
    print(
        f"trained {len(result.signature_set)} signatures from "
        f"{len(result.samples)} crawled samples "
        f"({result.pruning.final_features} active features); "
        f"wrote {args.output}"
    )
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    from repro.core import signature_set_from_json

    with open(args.signatures) as handle:
        signature_set = signature_set_from_json(handle.read())
    payloads = args.payloads or [
        line.rstrip("\n") for line in sys.stdin if line.strip()
    ]
    if args.workers > 1:
        from repro.http import HttpRequest, Trace
        from repro.ids import PSigeneDetector, SignatureEngine

        engine = SignatureEngine(PSigeneDetector(signature_set))
        trace = Trace(
            name="cli",
            requests=[HttpRequest(query=p) for p in payloads],
        )
        run = engine.run_batch(trace, workers=args.workers)
        by_index = {alert.request_index: alert for alert in run.alerts}
        exit_code = 0
        for index, payload in enumerate(payloads):
            alert = by_index.get(index)
            score = float(run.scores[index])
            if alert is not None:
                print(
                    f"[ALERT] p={score:0.4f} "
                    f"signatures={alert.matched}  {payload}"
                )
                exit_code = 3
            else:
                print(f"[pass ] p={score:0.4f}  {payload}")
        return exit_code
    exit_code = 0
    for payload in payloads:
        score, fired = signature_set.evaluate(payload)
        verdict = "ALERT" if fired else "pass "
        detail = f" signatures={fired}" if fired else ""
        print(f"[{verdict}] p={score:0.4f}{detail}  {payload}")
        if fired:
            exit_code = 3
    return exit_code


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.crawler import CrawlSession, SimulatedWeb

    web = SimulatedWeb(corpus_size=args.samples, seed=args.seed)
    report = CrawlSession(web).run()
    print(f"pages fetched: {report.pages_fetched}")
    print(f"blocked by robots: {report.pages_blocked}")
    print(f"payloads extracted: {report.payloads_seen}")
    print(f"unique samples: {len(report.samples)}")
    for portal, count in sorted(report.per_portal.items()):
        print(f"  {portal}: {count}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.eval import (
        EvaluationContext,
        format_table,
        percent,
        table5_accuracy,
    )

    context = EvaluationContext.build(
        seed=args.seed,
        n_attack_samples=args.samples,
        n_benign_train=min(args.samples * 3, 10_000),
        n_benign_test=args.benign,
        max_cluster_rows=min(args.samples, 1500),
        n_vulnerabilities=args.vulnerabilities,
        workers=args.workers,
    )
    rows = table5_accuracy(context)
    print(format_table(
        ["RULES", "TPR%(SQLmap)", "TPR%(Arachni)", "FPR%"],
        [
            [r["rules"], percent(r["tpr_sqlmap"]),
             percent(r["tpr_arachni"]), percent(r["fpr"], 4)]
            for r in rows
        ],
        title="Accuracy comparison (Table V)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pSigene reproduction (DSN 2014) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train and export signatures")
    train.add_argument("-o", "--output", default="signatures.json")
    train.add_argument("--samples", type=int, default=2000)
    train.add_argument("--benign", type=int, default=6000)
    train.add_argument("--max-cluster-rows", type=int, default=1200)
    train.add_argument("--seed", type=int, default=2012)
    train.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for feature extraction (default: 1)",
    )
    train.set_defaults(func=_cmd_train)

    score = sub.add_parser("score", help="score payloads against signatures")
    score.add_argument("-s", "--signatures", default="signatures.json")
    score.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for batched matching (default: 1)",
    )
    score.add_argument("payloads", nargs="*")
    score.set_defaults(func=_cmd_score)

    crawl = sub.add_parser("crawl", help="crawl the simulated portals")
    crawl.add_argument("--samples", type=int, default=1000)
    crawl.add_argument("--seed", type=int, default=2012)
    crawl.set_defaults(func=_cmd_crawl)

    evaluate = sub.add_parser("eval", help="run the Table V comparison")
    evaluate.add_argument("--samples", type=int, default=1500)
    evaluate.add_argument("--benign", type=int, default=8000)
    evaluate.add_argument("--vulnerabilities", type=int, default=40)
    evaluate.add_argument("--seed", type=int, default=2012)
    evaluate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for feature extraction (default: 1)",
    )
    evaluate.set_defaults(func=_cmd_eval)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
