"""Per-surface extractors: structured payloads → ``SurfaceValue`` triples.

Each extractor walks one channel of a request and yields the raw values
a detector should score, with locator provenance.  Extraction never
raises on attacker-controlled input — a malformed JSON body or a bogus
multipart boundary still yields *something* to score (the undecodable
text itself), mirroring how the URL codec treats malformed escapes.

The extractors are pure functions of the request object; they only read
the attributes :class:`~repro.http.request.HttpRequest` declares
(``query``, ``headers``, ``body``, ``method``, ``stored``), so anything
shaped like a request can be extracted from.
"""

from __future__ import annotations

import json

from repro.surfaces.model import (
    InjectionSurface,
    LEGACY_SURFACES,
    SurfaceValue,
)

__all__ = [
    "INSPECTED_HEADER_SKIP",
    "extract_surfaces",
    "legacy_flatten",
    "scoring_units",
]

#: Headers never inspected as an injection surface: structural framing
#: (host/length/encoding) plus ``cookie``, which the COOKIE surface
#: parses properly instead of scoring as one opaque blob.
INSPECTED_HEADER_SKIP: frozenset[str] = frozenset({
    "host",
    "content-length",
    "content-type",
    "cookie",
    "connection",
    "transfer-encoding",
    "accept-encoding",
    "keep-alive",
    "upgrade",
    "expect",
})

#: Nested-JSON recursion cap: a string leaf that itself parses as JSON
#: is re-walked (the nesting evasion), but only this deep.
_MAX_JSON_DEPTH = 6


def _content_type(request) -> str:
    return request.headers.get("content-type", "")


def _is_form_body(request) -> bool:
    """The legacy form-body condition, verbatim (parity-critical)."""
    ctype = _content_type(request)
    return (
        "x-www-form-urlencoded" in ctype
        or (not ctype and request.method == "POST")
    )


# -- query / form (the paper's channels) -------------------------------


def _extract_query(request) -> list[SurfaceValue]:
    if not request.query:
        return []
    return [SurfaceValue(
        InjectionSurface.QUERY, "query-string", request.query
    )]


def _extract_form(request) -> list[SurfaceValue]:
    if not (request.body and _is_form_body(request)):
        return []
    return [SurfaceValue(
        InjectionSurface.FORM_BODY, "form-body", request.body
    )]


# -- JSON body ---------------------------------------------------------


def _walk_json(node, path: str, depth: int, out: list[SurfaceValue]) -> None:
    """Harvest every string leaf of *node*, recording its JSON path.

    A string leaf that itself parses as a JSON object or array is walked
    again with a ``!json`` locator step — the nesting trick of smuggling
    a payload inside a JSON-encoded string survives one ``json.loads``
    but not a recursive harvest.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            _walk_json(value, f"{path}.{key}", depth, out)
        return
    if isinstance(node, list):
        for index, value in enumerate(node):
            _walk_json(value, f"{path}[{index}]", depth, out)
        return
    if isinstance(node, str):
        out.append(SurfaceValue(InjectionSurface.JSON_BODY, path, node))
        stripped = node.strip()
        if depth < _MAX_JSON_DEPTH and stripped[:1] in ("{", "["):
            try:
                nested = json.loads(stripped)
            except (json.JSONDecodeError, RecursionError):
                return
            if isinstance(nested, (dict, list)):
                _walk_json(nested, f"{path}!json", depth + 1, out)


def _extract_json(request) -> list[SurfaceValue]:
    if not request.body or "json" not in _content_type(request):
        return []
    try:
        document = json.loads(request.body)
    except (json.JSONDecodeError, RecursionError):
        # Malformed JSON is still attacker-chosen text reaching the
        # app's parser — score the raw body rather than going blind.
        return [SurfaceValue(
            InjectionSurface.JSON_BODY, "$!malformed", request.body
        )]
    out: list[SurfaceValue] = []
    _walk_json(document, "$", 0, out)
    return out


# -- multipart ---------------------------------------------------------


def _multipart_boundary(ctype: str) -> str | None:
    for param in ctype.split(";")[1:]:
        name, _, value = param.strip().partition("=")
        if name.strip().lower() == "boundary":
            value = value.strip()
            if value[:1] == '"' and value[-1:] == '"':
                value = value[1:-1]
            return value or None
    return None


def _disposition_params(head: str) -> dict[str, str]:
    """``name`` / ``filename`` out of a Content-Disposition header."""
    params: dict[str, str] = {}
    for line in head.split("\n"):
        if not line.lower().lstrip().startswith("content-disposition"):
            continue
        for param in line.split(";")[1:]:
            key, _, value = param.strip().partition("=")
            value = value.strip().rstrip("\r")
            if value[:1] == '"' and value[-1:] == '"':
                value = value[1:-1]
            params[key.strip().lower()] = value
    return params


def _extract_multipart(request) -> list[SurfaceValue]:
    ctype = _content_type(request)
    if not request.body or "multipart/" not in ctype:
        return []
    boundary = _multipart_boundary(ctype)
    if boundary is None:
        # No boundary parameter: the body cannot be split, but it is
        # still attacker-controlled bytes the app may try to parse.
        return [SurfaceValue(
            InjectionSurface.MULTIPART, "part:!unbounded", request.body
        )]
    out: list[SurfaceValue] = []
    chunks = request.body.split("--" + boundary)
    # chunks[0] is the preamble; a chunk of "--..." is the terminator.
    for index, chunk in enumerate(chunks[1:]):
        if chunk.startswith("--"):
            break
        part = chunk.lstrip("\r\n")
        for sep in ("\r\n\r\n", "\n\n"):
            if sep in part:
                head, content = part.split(sep, 1)
                break
        else:
            head, content = "", part
        params = _disposition_params(head)
        name = params.get("name", f"part{index}")
        filename = params.get("filename")
        if filename:
            out.append(SurfaceValue(
                InjectionSurface.MULTIPART,
                f"part:{name}:filename",
                filename,
            ))
        content = content.rstrip("\r\n")
        if content or not filename:
            out.append(SurfaceValue(
                InjectionSurface.MULTIPART, f"part:{name}", content
            ))
    return out


# -- cookies -----------------------------------------------------------


def _extract_cookies(request) -> list[SurfaceValue]:
    header = request.headers.get("cookie", "")
    if not header:
        return []
    out: list[SurfaceValue] = []
    seen: dict[str, int] = {}
    for chunk in header.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, value = chunk.partition("=")
        name = name.strip()
        repeat = seen.get(name, 0)
        seen[name] = repeat + 1
        # Duplicate cookie names are legal on the wire and a classic
        # smuggling vector; each occurrence gets its own locator.
        locator = name if repeat == 0 else f"{name}#{repeat + 1}"
        out.append(SurfaceValue(
            InjectionSurface.COOKIE, locator, value.strip()
        ))
    return out


# -- headers -----------------------------------------------------------


def _extract_headers(request) -> list[SurfaceValue]:
    out: list[SurfaceValue] = []
    for name, value in request.headers.items():
        if name in INSPECTED_HEADER_SKIP or not value:
            continue
        out.append(SurfaceValue(InjectionSurface.HEADER, name, value))
    return out


# -- second order ------------------------------------------------------


def _extract_second_order(request) -> list[SurfaceValue]:
    out: list[SurfaceValue] = []
    for key, value in getattr(request, "stored", ()):
        out.append(SurfaceValue(
            InjectionSurface.SECOND_ORDER, f"stored:{key}", value
        ))
    return out


_EXTRACTORS = {
    InjectionSurface.QUERY: _extract_query,
    InjectionSurface.FORM_BODY: _extract_form,
    InjectionSurface.JSON_BODY: _extract_json,
    InjectionSurface.MULTIPART: _extract_multipart,
    InjectionSurface.COOKIE: _extract_cookies,
    InjectionSurface.HEADER: _extract_headers,
    InjectionSurface.SECOND_ORDER: _extract_second_order,
}


def extract_surfaces(
    request,
    surfaces: tuple[InjectionSurface, ...] | None = None,
) -> list[SurfaceValue]:
    """All ``(surface, locator, value)`` triples of *request*.

    Surfaces are walked in canonical order (query, form, json,
    multipart, cookie, header, second-order) regardless of the order
    *surfaces* lists them, so extraction output is deterministic for a
    given selection.
    """
    selected = (
        frozenset(surfaces) if surfaces is not None
        else frozenset(InjectionSurface)
    )
    out: list[SurfaceValue] = []
    for surface in InjectionSurface:
        if surface in selected:
            out.extend(_EXTRACTORS[surface](request))
    return out


def legacy_flatten(request) -> str:
    """The paper's flattened payload: query string plus form body.

    Byte-identical to the historical ``HttpRequest.payload()`` — the
    query/form surface values joined in legacy order — which the parity
    test and the ``surfaces-legacy-parity`` conformance path pin.
    """
    values = [
        sv.value
        for sv in extract_surfaces(request, LEGACY_SURFACES)
        if sv.value
    ]
    return "&".join(values)


def scoring_units(
    request,
    surfaces: tuple[InjectionSurface, ...] | None = None,
) -> list[SurfaceValue]:
    """The values a detector actually scores for one request.

    Identical to :func:`extract_surfaces` except for the paper's
    channels: the query string and the urlencoded form body are scored
    as **one** flattened unit (one SQL query can span both — that is the
    paper's extraction, and scoring them separately would change legacy
    verdicts).  The merged unit is always emitted when either legacy
    surface is selected, even when empty: the offline engine scores the
    empty payload too, and verdict parity requires the same here.
    """
    selection = surfaces if surfaces is not None else LEGACY_SURFACES
    selected = frozenset(selection)
    units: list[SurfaceValue] = []
    legacy_selected = any(s in selected for s in LEGACY_SURFACES)
    if legacy_selected:
        query = request.query if InjectionSurface.QUERY in selected else ""
        form_values = (
            [sv.value for sv in _extract_form(request)]
            if InjectionSurface.FORM_BODY in selected else []
        )
        parts = [v for v in [query, *form_values] if v]
        surface = (
            InjectionSurface.FORM_BODY
            if form_values and not query
            else InjectionSurface.QUERY
        )
        locator = "query-string"
        if form_values and query:
            locator = "query-string+form-body"
        elif form_values:
            locator = "form-body"
        units.append(SurfaceValue(surface, locator, "&".join(parts)))
    for surface in InjectionSurface:
        if surface in LEGACY_SURFACES or surface not in selected:
            continue
        units.extend(_EXTRACTORS[surface](request))
    return units
