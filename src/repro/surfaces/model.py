"""The surface model: where injected SQL can enter a request.

An :class:`InjectionSurface` is one channel of a single HTTP request an
attacker controls.  The paper's extraction covers exactly two of them —
the query string and the urlencoded form body, flattened into one string
— and "Formal Analysis of Vulnerabilities of Web Applications Based on
SQL Injection" (De Meo et al.) catalogs the rest.  Extraction yields
``(surface, locator, value)`` triples (:class:`SurfaceValue`) rather
than one flattened string, so a verdict can say *where* the attack was,
not just that the request carried one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "DEFAULT_SURFACES",
    "LEGACY_SURFACES",
    "InjectionSurface",
    "SurfaceValue",
    "format_surfaces",
    "parse_surfaces",
]


class InjectionSurface(enum.Enum):
    """One injection channel of an HTTP request.

    The enum value is the stable wire/CLI spelling (``--surfaces
    query,json,cookie``, the framed protocol's ``surfaces`` list, the
    ``repro_surface_*`` metric names all use it).
    """

    QUERY = "query"
    FORM_BODY = "form"
    JSON_BODY = "json"
    MULTIPART = "multipart"
    COOKIE = "cookie"
    HEADER = "header"
    SECOND_ORDER = "second-order"

    @property
    def metric_name(self) -> str:
        """The surface's spelling inside a Prometheus metric name."""
        return self.value.replace("-", "_")


#: The paper's channels — the compatibility default everywhere a surface
#: selection is optional (CLI ``--surfaces``, framed requests without an
#: explicit list, ``inspect_request``).
LEGACY_SURFACES: tuple[InjectionSurface, ...] = (
    InjectionSurface.QUERY,
    InjectionSurface.FORM_BODY,
)

#: Every surface, in canonical extraction order.
DEFAULT_SURFACES: tuple[InjectionSurface, ...] = tuple(InjectionSurface)


@dataclass(frozen=True)
class SurfaceValue:
    """One detector-visible value extracted from one surface.

    Attributes:
        surface: the channel the value arrived on.
        locator: provenance within the surface — a JSON path
            (``$.user.name``), a cookie or header name, a multipart part
            name, a stored key (``stored:comment``), or the fixed
            ``query-string`` / ``form-body`` markers.
        value: the raw (still-encoded) text the detector scores.
    """

    surface: InjectionSurface
    locator: str
    value: str


def parse_surfaces(spec: str) -> tuple[InjectionSurface, ...]:
    """Parse a CLI/wire surface list like ``"query,json,cookie"``.

    Order is normalized to the canonical extraction order and duplicates
    collapse; an unknown name raises ``ValueError`` listing the valid
    spellings.  The special name ``all`` selects every surface.
    """
    names = [part.strip() for part in spec.split(",") if part.strip()]
    if not names:
        raise ValueError("empty surface selection")
    if "all" in names:
        return DEFAULT_SURFACES
    selected: set[InjectionSurface] = set()
    for name in names:
        try:
            selected.add(InjectionSurface(name))
        except ValueError:
            valid = ", ".join(s.value for s in InjectionSurface)
            raise ValueError(
                f"unknown surface {name!r}; valid: {valid}, all"
            ) from None
    return tuple(s for s in DEFAULT_SURFACES if s in selected)


def format_surfaces(surfaces: tuple[InjectionSurface, ...]) -> str:
    """Inverse of :func:`parse_surfaces`: the canonical spelling."""
    return ",".join(s.value for s in surfaces)
