"""Surface-aware scoring: fold per-surface verdicts into one alert.

:func:`score_request` is the single folding routine shared by the
offline entry points (``PSigeneDetector.inspect_request``,
``SignatureEngine``) and the gateway's framed wire mode — one
implementation means the ``gateway-framed`` conformance path proves the
wire agrees with the library by construction, not by coincidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.surfaces.extractors import scoring_units
from repro.surfaces.model import (
    InjectionSurface,
    LEGACY_SURFACES,
    format_surfaces,
)

__all__ = [
    "ScoreRequest",
    "SurfaceDetection",
    "SurfaceVerdict",
    "score_request",
]


@dataclass(frozen=True)
class ScoreRequest:
    """The unified input to every detector entry point.

    Wraps the request-shaped object to score plus the surface selection;
    ``inspect``/``inspect_request``/``SignatureEngine.run`` are thin
    wrappers that build one of these.  ``request`` may be ``None`` for
    the raw-payload path (then ``payload`` carries the string directly,
    preserving the line-protocol and ``inspect_payload`` semantics).
    """

    request: object | None = None
    payload: str | None = None
    surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES

    def __post_init__(self) -> None:
        if (self.request is None) == (self.payload is None):
            raise ValueError(
                "ScoreRequest needs exactly one of request= or payload="
            )


@dataclass(frozen=True)
class SurfaceVerdict:
    """One surface unit's verdict: where, what, and what the engine said.

    ``detection`` is whatever the payload-level detector returned — a
    :class:`repro.ids.rules.Detection` in practice; this module only
    reads its ``alert``/``score``/``matched_sids``.
    """

    surface: InjectionSurface
    locator: str
    detection: Any


@dataclass
class SurfaceDetection:
    """A whole-request verdict with per-surface attribution.

    Carries the exact legacy :class:`repro.ids.rules.Detection` shape
    (``alert``/``score``/``matched_sids`` — deliberately not a subclass,
    so :mod:`repro.surfaces` stays import-cycle-free below ``repro.ids``),
    so every consumer of the legacy verdict works unchanged; ``verdicts``
    adds which surface(s) alerted and through which locator.  The folded
    fields are the per-unit maximum score, the union of fired sids in
    first-seen order, and alert-if-any-unit-alerted.
    """

    alert: bool
    score: float
    matched_sids: list[int] = field(default_factory=list)
    verdicts: list[SurfaceVerdict] = field(default_factory=list)

    @property
    def alerting_surfaces(self) -> tuple[InjectionSurface, ...]:
        """Surfaces with at least one alerting unit, extraction order."""
        seen: list[InjectionSurface] = []
        for verdict in self.verdicts:
            if verdict.detection.alert and verdict.surface not in seen:
                seen.append(verdict.surface)
        return tuple(seen)

    def attribution(self) -> dict:
        """JSON-ready surface breakdown (gateway responses, CLI)."""
        return {
            "surfaces": format_surfaces(self.alerting_surfaces),
            "verdicts": [
                {
                    "surface": v.surface.value,
                    "locator": v.locator,
                    "alert": v.detection.alert,
                    "score": v.detection.score,
                    "sids": list(v.detection.matched_sids),
                }
                for v in self.verdicts
            ],
        }


def score_request(
    inspect: Callable[[str], Any],
    request: object,
    surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES,
) -> SurfaceDetection:
    """Score every selected surface of *request* through *inspect*.

    The query/form channels are flattened into one unit exactly as the
    legacy path did (see :func:`repro.surfaces.extractors.scoring_units`),
    so with the default selection the folded verdict is bit-identical to
    ``inspect(request.payload())`` — the ``surfaces-legacy-parity``
    conformance path holds by construction.
    """
    verdicts: list[SurfaceVerdict] = []
    alert = False
    score: float | None = None
    fired: list[int] = []
    fired_seen: set[int] = set()
    for unit in scoring_units(request, surfaces):
        detection = inspect(unit.value)
        verdicts.append(SurfaceVerdict(unit.surface, unit.locator, detection))
        alert = alert or detection.alert
        score = detection.score if score is None else max(score, detection.score)
        for sid in detection.matched_sids:
            if sid not in fired_seen:
                fired_seen.add(sid)
                fired.append(sid)
    return SurfaceDetection(
        alert=alert,
        score=0.0 if score is None else score,
        matched_sids=fired,
        verdicts=verdicts,
    )
