"""Adversarial evasion search against a payload-level detector.

The conformance fuzzer (:mod:`repro.conformance.fuzz`) uses mutators as
*coverage* — fixed derivations that exercise the normalizer's seams.
This module promotes them into an *adversary*: a seeded greedy search
that chains mutations (the corpus evasion mutators, unicode-confusable
rewrites through the inverse of the normalizer's fold table, and a
JSON-string-nesting trick) and keeps whichever chain drives the
detector's score down, stopping the moment a variant stops alerting.

Everything is deterministic from the seed: the same (detector, seed,
bases, budget) always yields the same chains and the same survival
rate, which is what lets ``BENCH_surfaces.json`` commit the numbers and
``ci_bench_guard.py`` fail on regression.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.corpus.grammar import CorpusGenerator
from repro.corpus.mutators import MUTATORS
from repro.normalize.unicode_map import FOLD_TABLE

__all__ = [
    "EvasionOutcome",
    "EvasionReport",
    "EvasionSearch",
    "evasion_bases",
]

#: ASCII → confusable alternatives, the inverse image of the
#: normalizer's fold table (same construction the conformance fuzzer
#: uses — every swap is one normalization claims to undo).
_UNFOLD: dict[str, tuple[str, ...]] = {}
for _folded, _ascii in FOLD_TABLE.items():
    _UNFOLD[_ascii] = _UNFOLD.get(_ascii, ()) + (_folded,)


def _confusables(value: str, rng: np.random.Generator) -> str:
    """Swap foldable ASCII characters for their unicode confusables."""
    out = []
    for ch in value:
        options = _UNFOLD.get(ch)
        if options and rng.random() < 0.5:
            out.append(options[int(rng.integers(len(options)))])
        else:
            out.append(ch)
    return "".join(out)


def _json_nest(value: str, rng: np.random.Generator) -> str:
    """Smuggle the payload inside a JSON-encoded string.

    ``json.dumps`` escapes quotes and backslashes, breaking literal
    regex anchors; the recursive JSON extractor un-nests one level per
    walk, so this trick tests the depth of the harvest, not just the
    top-level parse.
    """
    del rng
    return json.dumps({"q": value})


#: The adversary's move set: name → mutator.  Names are stable — they
#: appear in committed bench artifacts and evasion chain reports.
_MOVES: dict[str, Callable[[str, np.random.Generator], str]] = {
    mutator.__name__: mutator for mutator in MUTATORS
}
_MOVES["unicode_confusables"] = _confusables
_MOVES["json_nest"] = _json_nest

_MOVE_NAMES: tuple[str, ...] = tuple(_MOVES)


def evasion_bases(seed: int = 2012, count: int = 24) -> list[str]:
    """Grammar-rendered attack payloads the search starts from.

    Only bases the detector under test actually alerts on are worth
    attacking; :class:`EvasionSearch` filters the rest out and reports
    them separately (a miss on the unmutated base is a detection gap,
    not an evasion).
    """
    samples = CorpusGenerator(seed=seed).generate(count)
    return [sample.payload for sample in samples]


@dataclass(frozen=True)
class EvasionOutcome:
    """The search's result for one base payload.

    Attributes:
        base: the unmutated attack.
        base_score: detector score on the unmutated attack.
        detected_base: whether the detector alerted on the base at all.
        variant: the best (lowest-scoring) mutated form found.
        variant_score: detector score on that variant.
        evaded: the variant no longer alerts.
        chain: mutation names applied, in order.
    """

    base: str
    base_score: float
    detected_base: bool
    variant: str
    variant_score: float
    evaded: bool
    chain: tuple[str, ...]


@dataclass
class EvasionReport:
    """Aggregate over one seeded search run."""

    seed: int
    rounds: int
    branching: int
    outcomes: list[EvasionOutcome] = field(default_factory=list)

    @property
    def attacked(self) -> int:
        """Bases the detector alerted on (the adversary's targets)."""
        return sum(1 for o in self.outcomes if o.detected_base)

    @property
    def evaded(self) -> int:
        """Targets where some chain suppressed the alert."""
        return sum(1 for o in self.outcomes if o.detected_base and o.evaded)

    @property
    def survival_rate(self) -> float:
        """Fraction of attacked bases that found an evading chain."""
        return self.evaded / self.attacked if self.attacked else 0.0

    def move_effectiveness(self) -> dict[str, int]:
        """How often each move appears in a successful evasion chain."""
        counts = {name: 0 for name in _MOVE_NAMES}
        for outcome in self.outcomes:
            if outcome.detected_base and outcome.evaded:
                for move in outcome.chain:
                    counts[move] += 1
        return counts

    def to_dict(self) -> dict:
        """JSON-ready summary for bench artifacts."""
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "branching": self.branching,
            "bases": len(self.outcomes),
            "attacked": self.attacked,
            "evaded": self.evaded,
            "survival_rate": round(self.survival_rate, 4),
            "move_effectiveness": self.move_effectiveness(),
        }


class EvasionSearch:
    """Greedy seeded hill-descent against one detector.

    Per base: keep the current champion variant (initially the base);
    each round spawn ``branching`` candidates by applying one random
    move to the champion, score them all, and promote the lowest-scoring
    candidate that is no worse than the champion.  Stop early the moment
    a candidate stops alerting.  Greedy descent is deliberately simple —
    the point is a reproducible pressure gauge, not an optimal attacker.

    Args:
        inspect: payload-level detector entry point (returns a
            Detection-shaped object with ``alert`` and ``score``).
        seed: RNG seed; fixes the whole search.
        rounds: maximum chain length per base.
        branching: candidates tried per round.
    """

    def __init__(
        self,
        inspect: Callable[[str], object],
        *,
        seed: int = 2012,
        rounds: int = 8,
        branching: int = 6,
    ) -> None:
        self.inspect = inspect
        self.seed = seed
        self.rounds = rounds
        self.branching = branching

    def attack(self, base: str, rng: np.random.Generator) -> EvasionOutcome:
        """Search for an evading mutation chain for one base payload."""
        first = self.inspect(base)
        if not first.alert:
            return EvasionOutcome(
                base=base, base_score=first.score, detected_base=False,
                variant=base, variant_score=first.score, evaded=False,
                chain=(),
            )
        champion, champion_score = base, first.score
        chain: list[str] = []
        for _ in range(self.rounds):
            best_candidate: tuple[str, float, str, bool] | None = None
            for _ in range(self.branching):
                move = _MOVE_NAMES[int(rng.integers(len(_MOVE_NAMES)))]
                candidate = _MOVES[move](champion, rng)
                if candidate == champion:
                    continue
                detection = self.inspect(candidate)
                if (
                    best_candidate is None
                    or detection.score < best_candidate[1]
                ):
                    best_candidate = (
                        candidate, detection.score, move, detection.alert
                    )
                if not detection.alert:
                    break
            if best_candidate is None:
                break
            candidate, score, move, alerted = best_candidate
            if not alerted:
                chain.append(move)
                return EvasionOutcome(
                    base=base, base_score=first.score, detected_base=True,
                    variant=candidate, variant_score=score, evaded=True,
                    chain=tuple(chain),
                )
            if score <= champion_score:
                champion, champion_score = candidate, score
                chain.append(move)
        return EvasionOutcome(
            base=base, base_score=first.score, detected_base=True,
            variant=champion, variant_score=champion_score, evaded=False,
            chain=tuple(chain),
        )

    def run(self, bases: Sequence[str] | None = None) -> EvasionReport:
        """Attack every base; deterministic for a fixed seed and bases."""
        if bases is None:
            bases = evasion_bases(self.seed)
        report = EvasionReport(
            seed=self.seed, rounds=self.rounds, branching=self.branching
        )
        for index, base in enumerate(bases):
            # Per-base RNG stream: outcome b is independent of how many
            # rounds base b-1 consumed, so inserting a base never
            # perturbs the others' results.
            rng = np.random.default_rng((self.seed, index))
            report.outcomes.append(self.attack(base, rng))
        return report
