"""Multi-surface injection detection.

The paper's unit of detection is the flattened query-string-plus-form-body
payload (Section II-A); real SQL injection also arrives through JSON/REST
bodies, multipart forms, cookies, request headers, and second-order
(stored-then-replayed) channels.  This package names those channels
(:class:`InjectionSurface`), extracts detector-visible values from each
one with locator provenance (:func:`extract_surfaces`), and scores whole
requests surface by surface (:func:`score_request`), folding per-surface
verdicts into one alert with surface attribution.

DESIGN.md §17 documents the surface model, the wire-format v2 framing
that carries full requests to the gateway, and the adversarial evasion
search built on top of it.
"""

from repro.surfaces.evasion import (
    EvasionOutcome,
    EvasionReport,
    EvasionSearch,
    evasion_bases,
)
from repro.surfaces.extractors import (
    INSPECTED_HEADER_SKIP,
    extract_surfaces,
    legacy_flatten,
    scoring_units,
)
from repro.surfaces.model import (
    DEFAULT_SURFACES,
    LEGACY_SURFACES,
    InjectionSurface,
    SurfaceValue,
    format_surfaces,
    parse_surfaces,
)
from repro.surfaces.score import (
    ScoreRequest,
    SurfaceDetection,
    SurfaceVerdict,
    score_request,
)

__all__ = [
    "DEFAULT_SURFACES",
    "EvasionOutcome",
    "EvasionReport",
    "EvasionSearch",
    "INSPECTED_HEADER_SKIP",
    "InjectionSurface",
    "LEGACY_SURFACES",
    "ScoreRequest",
    "SurfaceDetection",
    "SurfaceValue",
    "SurfaceVerdict",
    "evasion_bases",
    "extract_surfaces",
    "format_surfaces",
    "legacy_flatten",
    "parse_surfaces",
    "score_request",
    "scoring_units",
]
