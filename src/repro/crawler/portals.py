"""Simulated public cybersecurity portals.

Section II-A crawls portals like SecurityFocus, the Exploit Database,
PacketStorm Security, and OSVDB — "OSVDB also provides its own search API".
With no network available, this module *is* the web: each
:class:`Portal` deterministically serves an index, advisory pages with
embedded SQLi proof-of-concept payloads, a ``robots.txt``, and (for the
OSVDB stand-in) a JSON search API.  The payloads come from a shared
:class:`~repro.corpus.grammar.CorpusGenerator` corpus, distributed across
portals with deliberate overlap so that cross-portal deduplication has real
work to do.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.corpus.grammar import AttackSample, CorpusGenerator

PORTAL_NAMES: tuple[str, ...] = (
    "exploitdb.test", "packetstorm.test", "osvdb.test", "securityfocus.test",
)

_ESCAPES = (("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"))


def html_escape(text: str) -> str:
    """Escape &, <, > for embedding payloads in advisory HTML."""
    out = text
    for raw, escaped in _ESCAPES:
        out = out.replace(raw, escaped)
    return out


def html_unescape(text: str) -> str:
    """Inverse of :func:`html_escape` (applied in reverse order)."""
    out = text
    for raw, escaped in reversed(_ESCAPES):
        out = out.replace(escaped, raw)
    return out


@dataclass(frozen=True)
class Page:
    """One servable resource."""

    status: int
    content_type: str
    body: str


class Portal:
    """One simulated portal: a small static site full of advisories.

    Args:
        host: portal hostname.
        samples: the attack samples this portal publishes.
        seed: layout randomization seed.
        api: when true, the portal also exposes ``/api/search?page=N``
            returning JSON (the OSVDB-style "search API" of Section II-A).
        per_page: advisories per index page.
    """

    def __init__(
        self,
        host: str,
        samples: list[AttackSample],
        *,
        seed: int = 0,
        api: bool = False,
        per_page: int = 25,
    ) -> None:
        self.host = host
        self.api = api
        self._samples = samples
        self._rng = np.random.default_rng(seed)
        self._pages: dict[str, Page] = {}
        self._build(per_page)

    # -- site construction -------------------------------------------------

    def _build(self, per_page: int) -> None:
        advisories: list[str] = []
        for number, sample in enumerate(self._samples):
            path = f"/advisory/{number:05d}.html"
            advisories.append(path)
            self._pages[path] = self._advisory_page(number, sample)
        index_count = max(1, (len(advisories) + per_page - 1) // per_page)
        for page_number in range(index_count):
            chunk = advisories[page_number * per_page:(page_number + 1) * per_page]
            self._pages[self._index_path(page_number)] = self._index_page(
                page_number, index_count, chunk
            )
        self._pages["/robots.txt"] = Page(
            200, "text/plain", self._robots_body()
        )
        self._pages["/about.html"] = Page(
            200, "text/html",
            f"<html><h1>About {self.host}</h1><p>A public repository of "
            "computer security tools, exploits, and security advisories."
            "</p></html>",
        )
        self._pages["/private/internal.html"] = Page(
            200, "text/html", "<html>crawler-disallowed area</html>"
        )
        if self.api:
            pages = max(1, (len(self._samples) + 99) // 100)
            for api_page in range(pages):
                chunk_samples = self._samples[api_page * 100:(api_page + 1) * 100]
                body = json.dumps({
                    "page": api_page,
                    "pages": pages,
                    "results": [
                        {"id": s.sample_id, "payload": s.payload}
                        for s in chunk_samples
                    ],
                })
                self._pages[f"/api/search?page={api_page}"] = Page(
                    200, "application/json", body
                )

    @staticmethod
    def _index_path(page_number: int) -> str:
        return "/index.html" if page_number == 0 else f"/index_{page_number}.html"

    def _index_page(
        self, page_number: int, index_count: int, advisory_paths: list[str]
    ) -> Page:
        links = [f'<a href="{path}">advisory</a>' for path in advisory_paths]
        if page_number + 1 < index_count:
            links.append(
                f'<a href="{self._index_path(page_number + 1)}">next</a>'
            )
        links.append('<a href="/about.html">about</a>')
        links.append('<a href="/private/internal.html">internal</a>')
        body = "<html><body>" + "\n".join(links) + "</body></html>"
        return Page(200, "text/html", body)

    def _advisory_page(self, number: int, sample: AttackSample) -> Page:
        victim = f"http://victim{int(self._rng.integers(1, 99))}.example"
        page = self._rng.choice(
            ["/products.php", "/view.php", "/article.php", "/item.jsp"]
        )
        poc = f"{victim}{page}?{sample.payload}"
        style = int(self._rng.integers(3))
        if style == 0:
            embed = f"<code>{html_escape(poc)}</code>"
        elif style == 1:
            embed = f"<pre>GET {page}?{html_escape(sample.payload)} HTTP/1.1</pre>"
        else:
            embed = f"<pre>{html_escape(poc)}</pre>"
        body = (
            "<html><body>"
            f"<h1>SQL injection advisory #{number}</h1>"
            "<p>The vendor has been notified. Proof of concept:</p>"
            f"{embed}"
            '<p><a href="/index.html">back</a></p>'
            "</body></html>"
        )
        return Page(200, "text/html", body)

    def _robots_body(self) -> str:
        return (
            "User-agent: *\n"
            "Disallow: /private/\n"
            "Crawl-delay: 1\n"
        )

    # -- serving -----------------------------------------------------------

    def get(self, path_and_query: str) -> Page:
        """Serve one resource; unknown paths get a 404 page."""
        page = self._pages.get(path_and_query)
        if page is None:
            return Page(404, "text/html", "<html>404</html>")
        return page

    @property
    def sample_count(self) -> int:
        """Number of attack samples this portal publishes."""
        return len(self._samples)


class SimulatedWeb:
    """The network: hostname → portal, with a fetch entry point.

    Args:
        corpus_size: total number of *distinct* attack samples published
            across the portals.
        seed: corpus + layout seed.
        overlap: fraction of samples published on more than one portal
            (makes cross-portal dedup meaningful).
    """

    def __init__(
        self,
        corpus_size: int = 2000,
        *,
        seed: int = 2012,
        overlap: float = 0.15,
    ) -> None:
        generator = CorpusGenerator(seed=seed)
        samples = generator.generate(corpus_size)
        rng = np.random.default_rng(seed + 1)
        assignment: dict[str, list[AttackSample]] = {
            name: [] for name in PORTAL_NAMES
        }
        for sample in samples:
            primary = PORTAL_NAMES[int(rng.integers(len(PORTAL_NAMES)))]
            assignment[primary].append(sample)
            if rng.random() < overlap:
                secondary = PORTAL_NAMES[int(rng.integers(len(PORTAL_NAMES)))]
                if secondary != primary:
                    assignment[secondary].append(sample)
        self.portals: dict[str, Portal] = {}
        for index, name in enumerate(PORTAL_NAMES):
            self.portals[name] = Portal(
                name,
                assignment[name],
                seed=seed + 10 + index,
                api=(name == "osvdb.test"),
            )
        self._distinct = len(samples)

    @property
    def distinct_samples(self) -> int:
        """Number of distinct samples published web-wide."""
        return self._distinct

    def get(self, host: str, path_and_query: str) -> Page:
        """Fetch from a portal; unknown hosts act as connection errors."""
        portal = self.portals.get(host)
        if portal is None:
            return Page(0, "", "")  # connection error
        return portal.get(path_and_query)

    def seeds(self) -> list[str]:
        """Crawl seed URLs, one per portal."""
        return [f"http://{name}/index.html" for name in PORTAL_NAMES]
