"""robots.txt parsing and policy enforcement.

The paper's collection phase crawls public portals; a well-behaved crawler
(and ours is part of the reproduced system, not a mock) honors each site's
``robots.txt``.  Only the subset of the protocol the portals use is
implemented: ``User-agent``, ``Disallow``, ``Allow``, ``Crawl-delay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RobotsPolicy:
    """Parsed robots rules for one user-agent.

    Attributes:
        disallow: path prefixes the crawler must not fetch.
        allow: path prefixes explicitly re-allowed (override disallow when
            the allow rule is the longer match, per the de-facto standard).
        crawl_delay: seconds the crawler must wait between fetches.
    """

    disallow: list[str] = field(default_factory=list)
    allow: list[str] = field(default_factory=list)
    crawl_delay: float = 0.0

    def allowed(self, path: str) -> bool:
        """Longest-match evaluation of allow/disallow prefixes."""
        best_dis = max(
            (len(p) for p in self.disallow if p and path.startswith(p)),
            default=-1,
        )
        best_allow = max(
            (len(p) for p in self.allow if p and path.startswith(p)),
            default=-1,
        )
        if best_dis == -1:
            return True
        return best_allow >= best_dis


def parse_robots(text: str, user_agent: str = "psigene-crawler") -> RobotsPolicy:
    """Parse a robots.txt body for *user_agent*.

    Rules in the ``*`` group apply unless a more specific group matching the
    agent name exists; the specific group then wins outright (standard
    robots semantics: groups are not merged).
    """
    groups: dict[str, RobotsPolicy] = {}
    current_agents: list[str] = []
    saw_rule = True
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        key, value = (part.strip() for part in line.split(":", 1))
        key = key.lower()
        if key == "user-agent":
            if saw_rule:
                current_agents = []
                saw_rule = False
            current_agents.append(value.lower())
            groups.setdefault(value.lower(), RobotsPolicy())
            continue
        saw_rule = True
        for agent in current_agents:
            policy = groups[agent]
            if key == "disallow" and value:
                policy.disallow.append(value)
            elif key == "allow" and value:
                policy.allow.append(value)
            elif key == "crawl-delay":
                try:
                    policy.crawl_delay = float(value)
                except ValueError:
                    pass
    agent_key = user_agent.lower()
    for candidate, policy in groups.items():
        if candidate != "*" and candidate in agent_key:
            return policy
    return groups.get("*", RobotsPolicy())
