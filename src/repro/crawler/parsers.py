"""Parsing fetched pages: link extraction and payload extraction.

Section II-A: "what we see during the web crawling is the entire HTTP
request payload and we extract the SQL query from it by leaving out the
HTTP address, the port, and the path (typically a ? indicates the start of
the query string)."  Advisory pages embed proof-of-concept URLs or raw
requests inside ``<code>``/``<pre>`` blocks; the payload extractor applies
exactly that rule to each embedded exploit line.
"""

from __future__ import annotations

import json
import re

from repro.crawler.portals import html_unescape

_HREF_RE = re.compile(r'href="([^"]+)"', re.IGNORECASE)
_CODE_BLOCK_RE = re.compile(r"<(code|pre)>(.*?)</\1>", re.IGNORECASE | re.S)


def extract_links(body: str, base_host: str) -> list[str]:
    """Absolute URLs of all links on an HTML page.

    Relative links resolve against *base_host*; off-page anchors and
    non-http schemes are dropped.
    """
    links: list[str] = []
    for href in _HREF_RE.findall(body):
        if href.startswith("#") or href.startswith("mailto:"):
            continue
        if href.startswith("http://") or href.startswith("https://"):
            links.append(href)
        elif href.startswith("/"):
            links.append(f"http://{base_host}{href}")
        else:
            links.append(f"http://{base_host}/{href}")
    return links


def extract_payloads_from_html(body: str) -> list[str]:
    """Query-string payloads from the code/pre blocks of an advisory page.

    Each block is scanned line by line; the paper's rule — everything after
    the first ``?`` — is applied to lines that look like exploit URLs or
    raw request lines.  Trailing HTTP-version tokens from raw request lines
    are stripped.
    """
    payloads: list[str] = []
    for _tag, block in _CODE_BLOCK_RE.findall(body):
        for line in html_unescape(block).splitlines():
            line = line.strip()
            if "?" not in line:
                continue
            after = line.split("?", 1)[1]
            after = re.sub(r"\s+HTTP/[0-9.]+$", "", after)
            if after:
                payloads.append(after)
    return payloads


def extract_payloads_from_json(body: str) -> tuple[list[str], int, int]:
    """Payloads plus ``(page, pages)`` pagination from a search-API response.

    Malformed JSON yields no payloads rather than an exception — a crawler
    must survive whatever a remote endpoint returns.
    """
    try:
        data = json.loads(body)
    except json.JSONDecodeError:
        return [], 0, 1
    results = data.get("results", [])
    payloads = [
        str(entry["payload"]) for entry in results
        if isinstance(entry, dict) and "payload" in entry
    ]
    return payloads, int(data.get("page", 0)), int(data.get("pages", 1))
