"""Cross-portal sample deduplication.

Public portals republish each other's advisories; the same proof-of-concept
appears on several sites.  Dedup is by digest of the *normalized* payload,
so trivially re-encoded copies (``%27`` vs ``'``) collapse too.
"""

from __future__ import annotations

import hashlib

from repro.normalize import Normalizer


class PayloadDeduplicator:
    """Accepts payloads once; rejects normalized duplicates."""

    def __init__(self, normalizer: Normalizer | None = None) -> None:
        self._normalizer = normalizer if normalizer is not None else Normalizer()
        self._seen: set[bytes] = set()
        self.accepted = 0
        self.rejected = 0

    def _digest(self, payload: str) -> bytes:
        normalized = self._normalizer(payload)
        return hashlib.sha256(normalized.encode("utf-8", "replace")).digest()

    def admit(self, payload: str) -> bool:
        """True when *payload* is new; records it either way."""
        digest = self._digest(payload)
        if digest in self._seen:
            self.rejected += 1
            return False
        self._seen.add(digest)
        self.accepted += 1
        return True

    def __len__(self) -> int:
        return len(self._seen)
