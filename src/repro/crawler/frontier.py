"""Crawl frontier: BFS URL queue with visited tracking and budgets."""

from __future__ import annotations

from collections import deque

from repro.http.url import split_url


class Frontier:
    """FIFO frontier with per-URL dedup, depth, and page budgets.

    Args:
        max_pages: hard budget of URLs handed out.
        max_depth: link distance from the seeds beyond which URLs are
            dropped (seeds are depth 0).
        allowed_hosts: when given, URLs on other hosts are ignored —
            the crawl stays on the cybersecurity portals.
    """

    def __init__(
        self,
        *,
        max_pages: int = 10_000,
        max_depth: int = 25,
        allowed_hosts: set[str] | None = None,
    ) -> None:
        if max_pages <= 0:
            raise ValueError("max_pages must be positive")
        self._queue: deque[tuple[str, int]] = deque()
        self._enqueued: set[str] = set()
        self._max_pages = max_pages
        self._max_depth = max_depth
        self._allowed_hosts = allowed_hosts
        self.dispensed = 0
        self.dropped_offsite = 0
        self.dropped_depth = 0

    def add(self, url: str, depth: int = 0) -> bool:
        """Queue *url*; returns whether it was accepted."""
        if url in self._enqueued:
            return False
        if depth > self._max_depth:
            self.dropped_depth += 1
            return False
        host, _path, _query = split_url(url)
        if self._allowed_hosts is not None and host not in self._allowed_hosts:
            self.dropped_offsite += 1
            return False
        self._enqueued.add(url)
        self._queue.append((url, depth))
        return True

    def next(self) -> tuple[str, int] | None:
        """Next URL and its depth, or ``None`` when done/budget exhausted."""
        if self.dispensed >= self._max_pages or not self._queue:
            return None
        self.dispensed += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def exhausted(self) -> bool:
        """True when no more URLs can be dispensed."""
        return not self._queue or self.dispensed >= self._max_pages
