"""Polite fetching layer over the simulated web.

Enforces per-host crawl delays from robots.txt against a simulated clock
(so tests and benchmarks don't actually sleep), caches robots policies,
and keeps fetch statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawler.portals import Page, SimulatedWeb
from repro.crawler.robots import RobotsPolicy, parse_robots
from repro.http.url import split_url


class SimulatedClock:
    """Monotonic clock the fetcher advances instead of sleeping."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance virtual time (raises on negative durations)."""
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    def tick(self, seconds: float = 0.001) -> None:
        """Advance time by the small per-request overhead."""
        self._now += seconds


@dataclass
class FetchResult:
    """Outcome of one fetch."""

    url: str
    status: int
    content_type: str
    body: str

    @property
    def ok(self) -> bool:
        """True for a successful (HTTP 200) fetch."""
        return self.status == 200


@dataclass
class FetchStats:
    """Counters the crawl report exposes."""

    attempted: int = 0
    succeeded: int = 0
    blocked_by_robots: int = 0
    errors: int = 0
    total_delay: float = 0.0
    per_host: dict[str, int] = field(default_factory=dict)


class Fetcher:
    """Fetches URLs from a :class:`SimulatedWeb`, honoring robots.txt.

    Args:
        web: the simulated network.
        clock: time source for politeness delays.
        user_agent: agent string matched against robots groups.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        clock: SimulatedClock | None = None,
        user_agent: str = "psigene-crawler",
    ) -> None:
        self._web = web
        self._clock = clock if clock is not None else SimulatedClock()
        self._agent = user_agent
        self._robots: dict[str, RobotsPolicy] = {}
        self._last_fetch: dict[str, float] = {}
        self.stats = FetchStats()

    def _policy(self, host: str) -> RobotsPolicy:
        policy = self._robots.get(host)
        if policy is None:
            page = self._web.get(host, "/robots.txt")
            text = page.body if page.status == 200 else ""
            policy = parse_robots(text, self._agent)
            self._robots[host] = policy
        return policy

    def fetch(self, url: str) -> FetchResult | None:
        """Fetch *url*; returns ``None`` when robots.txt forbids it."""
        host, path, query = split_url(url)
        self.stats.attempted += 1
        policy = self._policy(host)
        if not policy.allowed(path):
            self.stats.blocked_by_robots += 1
            return None
        self._wait_politely(host, policy)
        target = path + (f"?{query}" if query else "")
        page: Page = self._web.get(host, target)
        self._last_fetch[host] = self._clock.now()
        self.stats.per_host[host] = self.stats.per_host.get(host, 0) + 1
        if page.status != 200:
            self.stats.errors += 1
        else:
            self.stats.succeeded += 1
        return FetchResult(
            url=url, status=page.status,
            content_type=page.content_type, body=page.body,
        )

    def _wait_politely(self, host: str, policy: RobotsPolicy) -> None:
        last = self._last_fetch.get(host)
        if last is None or policy.crawl_delay <= 0:
            self._clock.tick()
            return
        elapsed = self._clock.now() - last
        remaining = policy.crawl_delay - elapsed
        if remaining > 0:
            self._clock.sleep(remaining)
            self.stats.total_delay += remaining
        self._clock.tick()
