"""The crawl session: phase 1 of the pSigene pipeline, end to end.

Seeds → frontier → polite fetch → parse (HTML advisories and JSON search
APIs) → payload extraction → normalized dedup → attack samples.  The
result is what Section II-A's crawl produced: a corpus of SQLi payload
strings with portal attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.grammar import AttackSample
from repro.crawler.dedup import PayloadDeduplicator
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.crawler.fetcher import Fetcher, SimulatedClock
from repro.crawler.frontier import Frontier
from repro.crawler.parsers import (
    extract_links,
    extract_payloads_from_html,
    extract_payloads_from_json,
)
from repro.crawler.portals import SimulatedWeb
from repro.http.url import split_url


@dataclass
class CrawlReport:
    """What the crawl did, for the record and the tests.

    Attributes:
        pages_fetched: successful page fetches.
        pages_blocked: fetches refused by robots.txt.
        payloads_seen: payload strings extracted before dedup.
        samples: deduplicated attack samples, portal-attributed.
        per_portal: sample counts by portal.
    """

    pages_fetched: int = 0
    pages_blocked: int = 0
    payloads_seen: int = 0
    samples: list[AttackSample] = field(default_factory=list)
    per_portal: dict[str, int] = field(default_factory=dict)


class CrawlSession:
    """Orchestrates one complete crawl of the simulated portals.

    Args:
        web: the simulated network to crawl.
        max_pages: fetch budget.
        clock: simulated time source (politeness delays are virtual).
    """

    def __init__(
        self,
        web: SimulatedWeb,
        *,
        max_pages: int = 50_000,
        clock: SimulatedClock | None = None,
    ) -> None:
        self._web = web
        self._fetcher = Fetcher(web, clock=clock)
        hosts = set(web.portals)
        # Portal indexes paginate as a linear "next" chain, so link depth
        # grows with corpus size; the page budget is the real limiter.
        self._frontier = Frontier(
            max_pages=max_pages,
            max_depth=max_pages,
            allowed_hosts=hosts,
        )
        self._dedup = PayloadDeduplicator()
        registry = get_registry()
        self._fetched_counter = registry.counter(
            "repro_crawl_pages_fetched_total",
            "Pages fetched successfully by the crawler.",
        )
        self._blocked_counter = registry.counter(
            "repro_crawl_pages_blocked_total",
            "Fetches refused by robots.txt.",
        )
        self._payloads_counter = registry.counter(
            "repro_crawl_payloads_total",
            "Payload strings extracted before dedup.",
        )
        self._dedup_counter = registry.counter(
            "repro_crawl_payloads_deduped_total",
            "Payloads dropped as normalized duplicates.",
        )

    def run(self) -> CrawlReport:
        """Crawl from the portal seeds until frontier/budget exhaustion."""
        with trace.span("crawl.run") as crawl_span:
            report = self._run(crawl_span)
        return report

    def _run(self, crawl_span) -> CrawlReport:
        report = CrawlReport()
        for seed in self._web.seeds():
            self._frontier.add(seed, depth=0)
        for host, portal in self._web.portals.items():
            if portal.api:
                self._frontier.add(f"http://{host}/api/search?page=0", depth=0)

        while True:
            item = self._frontier.next()
            if item is None:
                break
            url, depth = item
            result = self._fetcher.fetch(url)
            if result is None:
                report.pages_blocked += 1
                self._blocked_counter.inc()
                continue
            if not result.ok:
                continue
            report.pages_fetched += 1
            self._fetched_counter.inc()
            host, _path, _query = split_url(url)
            if "json" in result.content_type:
                self._consume_json(result.body, host, depth, report)
            else:
                self._consume_html(result.body, host, depth, report)
        crawl_span.set(
            pages_fetched=report.pages_fetched,
            pages_blocked=report.pages_blocked,
            payloads_seen=report.payloads_seen,
            samples=len(report.samples),
        )
        return report

    def _consume_html(
        self, body: str, host: str, depth: int, report: CrawlReport
    ) -> None:
        for link in extract_links(body, host):
            self._frontier.add(link, depth + 1)
        for payload in extract_payloads_from_html(body):
            self._admit(payload, host, report)

    def _consume_json(
        self, body: str, host: str, depth: int, report: CrawlReport
    ) -> None:
        payloads, page, pages = extract_payloads_from_json(body)
        for payload in payloads:
            self._admit(payload, host, report)
        if page + 1 < pages:
            self._frontier.add(
                f"http://{host}/api/search?page={page + 1}", depth + 1
            )

    def _admit(self, payload: str, host: str, report: CrawlReport) -> None:
        report.payloads_seen += 1
        self._payloads_counter.inc()
        if not self._dedup.admit(payload):
            self._dedup_counter.inc()
            return
        sample = AttackSample(
            sample_id=f"crawl-{len(report.samples):06d}",
            payload=payload,
            family="",  # ground truth unknown to the crawler
            portal=host,
        )
        report.samples.append(sample)
        report.per_portal[host] = report.per_portal.get(host, 0) + 1
