"""Webcrawling substrate: portals, fetcher, frontier, parsers, dedup."""

from repro.crawler.dedup import PayloadDeduplicator
from repro.crawler.fetcher import Fetcher, FetchResult, FetchStats, SimulatedClock
from repro.crawler.frontier import Frontier
from repro.crawler.parsers import (
    extract_links,
    extract_payloads_from_html,
    extract_payloads_from_json,
)
from repro.crawler.portals import PORTAL_NAMES, Page, Portal, SimulatedWeb
from repro.crawler.robots import RobotsPolicy, parse_robots
from repro.crawler.session import CrawlReport, CrawlSession

__all__ = [
    "Portal",
    "Page",
    "SimulatedWeb",
    "PORTAL_NAMES",
    "RobotsPolicy",
    "parse_robots",
    "Fetcher",
    "FetchResult",
    "FetchStats",
    "SimulatedClock",
    "Frontier",
    "extract_links",
    "extract_payloads_from_html",
    "extract_payloads_from_json",
    "PayloadDeduplicator",
    "CrawlSession",
    "CrawlReport",
]
