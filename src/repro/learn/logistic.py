"""L2-regularized logistic regression trained with Newton–PCG.

Section II-D defines the signature model: the hypothesis
``h_θ(F) = g(θᵀ F)`` with the sigmoid ``g(z) = 1 / (1 + e^{-z})``, trained
on the bicluster's attack samples versus benign traffic; the optimizer is
Preconditioned Conjugate Gradients.  Here each Newton step's linear system
``(XᵀDX + λI) δ = -∇`` is solved by :func:`repro.learn.pcg.pcg` with a
Jacobi preconditioner, which is the standard "PCG for logistic regression"
formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learn.pcg import pcg


def sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable sigmoid ``1 / (1 + e^{-z})``."""
    if isinstance(z, (float, int)):
        # Scalar fast path — the IDS engines call this once per
        # signature per request, where the array branch's mask plumbing
        # costs more than the exponential.  np.exp on a float64 scalar
        # runs the same ufunc inner loop as the array branch, so the
        # result is bit-identical.
        value = np.float64(z)
        if value >= 0:
            return float(1.0 / (1.0 + np.exp(-value)))
        exp_z = np.exp(value)
        return float(exp_z / (1.0 + exp_z))
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    if out.ndim == 0:
        return float(out)
    return out


def log_loss(
    y: np.ndarray, probabilities: np.ndarray, *, eps: float = 1e-12
) -> float:
    """Mean negative log-likelihood of labels under predicted probabilities."""
    p = np.clip(probabilities, eps, 1.0 - eps)
    return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))


@dataclass
class TrainingReport:
    """Optimization diagnostics.

    Attributes:
        newton_iterations: outer Newton steps taken.
        pcg_iterations: total inner CG iterations.
        final_loss: regularized mean log-loss at the solution.
        converged: gradient norm fell under tolerance.
    """

    newton_iterations: int
    pcg_iterations: int
    final_loss: float
    converged: bool


class LogisticModel:
    """A trained logistic classifier ``p = g(θ₀ + θᵀx)``.

    Attributes:
        theta: coefficient vector, intercept first (the paper's Θ prints the
            intercept as the leading constant, e.g. Θ₆ᵀ = −3.761054 + ...).
    """

    def __init__(self, theta: np.ndarray) -> None:
        self.theta = np.asarray(theta, dtype=np.float64)

    @property
    def intercept(self) -> float:
        """θ₀, the bias term."""
        return float(self.theta[0])

    @property
    def coefficients(self) -> np.ndarray:
        """Per-feature weights θ₁..θ_d."""
        return self.theta[1:]

    def decision(self, features: np.ndarray) -> np.ndarray:
        """The linear score z = θ₀ + θᵀx per row."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return self.theta[0] + features @ self.theta[1:]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability that each row belongs to the attack class."""
        return np.asarray(sigmoid(self.decision(features)))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)


def train_logistic(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    l2: float = 1.0,
    max_newton: int = 50,
    gradient_tol: float = 1e-6,
    pcg_tol: float = 1e-8,
    class_weighted: bool = True,
    theta0: np.ndarray | None = None,
) -> tuple[LogisticModel, TrainingReport]:
    """Fit logistic regression by Newton's method with PCG inner solves.

    Args:
        features: ``(n, d)`` design matrix (no intercept column; added here).
        labels: ``(n,)`` array of {0, 1}.
        l2: ridge penalty on the non-intercept coefficients.  The penalty
            keeps the Newton Hessian positive definite even when a
            bicluster's features are collinear (the paper notes heavy
            feature overlap) and performs the pruning-like shrinkage
            observed in Table VI.
        max_newton: outer iteration cap.
        gradient_tol: convergence threshold on ``||∇||∞``.
        pcg_tol: inner solver tolerance.
        class_weighted: re-weight classes to balance; the benign trace is
            ~8× larger than any bicluster, and unweighted training would
            push the model toward "never alert".
        theta0: optional warm start (intercept first).  Incremental
            retraining (Experiment 2) converges in a fraction of the
            Newton steps when seeded with the previous Θ.
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("features must be 2-D")
    if y.shape != (x.shape[0],):
        raise ValueError("labels must align with feature rows")
    if not np.isin(y, (0.0, 1.0)).all():
        raise ValueError("labels must be 0/1")
    if y.min() == y.max():
        raise ValueError("training needs both classes present")

    n, d = x.shape
    design = np.hstack([np.ones((n, 1)), x])
    if class_weighted:
        positive = y.sum()
        negative = n - positive
        sample_weight = np.where(
            y == 1.0, n / (2.0 * positive), n / (2.0 * negative)
        )
    else:
        sample_weight = np.ones(n)

    ridge = np.full(d + 1, l2)
    ridge[0] = 0.0  # never penalize the intercept

    if theta0 is not None:
        theta = np.asarray(theta0, dtype=np.float64).copy()
        if theta.shape != (d + 1,):
            raise ValueError(
                f"theta0 must have {d + 1} entries, got {theta.shape}"
            )
    else:
        theta = np.zeros(d + 1)
    total_pcg = 0
    converged = False
    for newton_step in range(1, max_newton + 1):
        z = design @ theta
        p = np.asarray(sigmoid(z))
        gradient = design.T @ (sample_weight * (p - y)) + ridge * theta
        if float(np.abs(gradient).max()) < gradient_tol:
            converged = True
            newton_step -= 1
            break
        curvature = sample_weight * p * (1.0 - p)
        # Guard against zero curvature on separable data.
        curvature = np.maximum(curvature, 1e-10)

        def hessian_matvec(v: np.ndarray) -> np.ndarray:
            return design.T @ (curvature * (design @ v)) + ridge * v

        diag = np.einsum("ij,ij->j", design, curvature[:, None] * design)
        diag = diag + ridge
        result = pcg(
            hessian_matvec, -gradient, preconditioner=diag, tol=pcg_tol
        )
        total_pcg += result.iterations
        step = result.x

        # Backtracking line search on the regularized loss.
        current = _loss(design, y, sample_weight, ridge, theta)
        scale = 1.0
        for _ in range(30):
            candidate = theta + scale * step
            if _loss(design, y, sample_weight, ridge, candidate) <= current:
                break
            scale *= 0.5
        theta = theta + scale * step
    else:
        newton_step = max_newton

    probabilities = np.asarray(sigmoid(design @ theta))
    report = TrainingReport(
        newton_iterations=newton_step,
        pcg_iterations=total_pcg,
        final_loss=log_loss(y, probabilities),
        converged=converged,
    )
    return LogisticModel(theta), report


def _loss(
    design: np.ndarray,
    y: np.ndarray,
    sample_weight: np.ndarray,
    ridge: np.ndarray,
    theta: np.ndarray,
) -> float:
    z = design @ theta
    # log(1 + e^z) computed stably.
    softplus = np.where(z > 0, z + np.log1p(np.exp(-z)), np.log1p(np.exp(z)))
    nll = float((sample_weight * (softplus - y * z)).sum())
    return nll + 0.5 * float(ridge @ (theta * theta))
