"""K-fold cross-validation for signature-model quality estimation.

Section IV asks "How far apart can the attacks in training and test be?"
— the perennial generalization question.  Cross-validation is the
standard instrument: fold the bicluster's labelled data, train Θ on k−1
folds, score the held-out fold, and report the spread.  Used by the
ablation benches and available to operators deciding whether a bicluster
has enough coherent data to deserve a signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learn.logistic import train_logistic
from repro.learn.metrics import Confusion, confusion_from_alerts


@dataclass
class FoldResult:
    """Held-out metrics for one fold.

    Attributes:
        fold: fold index (0-based).
        confusion: held-out confusion counts at threshold 0.5.
        auc_proxy: mean held-out probability gap between classes
            (P̄(attack) − P̄(benign)); 1.0 is perfect separation.
    """

    fold: int
    confusion: Confusion
    auc_proxy: float


@dataclass
class CrossValidationReport:
    """Aggregate over folds.

    Attributes:
        folds: per-fold results.
        mean_tpr / std_tpr: held-out detection rate statistics.
        mean_fpr: held-out false-positive rate.
    """

    folds: list[FoldResult]

    @property
    def mean_tpr(self) -> float:
        """Mean held-out TPR across folds."""
        return float(np.mean([f.confusion.tpr for f in self.folds]))

    @property
    def std_tpr(self) -> float:
        """Standard deviation of held-out TPR across folds."""
        return float(np.std([f.confusion.tpr for f in self.folds]))

    @property
    def mean_fpr(self) -> float:
        """Mean held-out FPR across folds."""
        return float(np.mean([f.confusion.fpr for f in self.folds]))


def _stratified_folds(
    labels: np.ndarray, k: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Index arrays for k folds, class-stratified."""
    folds: list[list[int]] = [[] for _ in range(k)]
    for value in (0.0, 1.0):
        indices = np.nonzero(labels == value)[0]
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % k].append(int(index))
    return [np.array(sorted(fold)) for fold in folds]


def cross_validate(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    k: int = 5,
    l2: float = 1.0,
    threshold: float = 0.5,
    seed: int = 0,
) -> CrossValidationReport:
    """Stratified k-fold CV of the logistic signature model.

    Args:
        features: ``(n, d)`` count matrix.
        labels: 0/1 labels.
        k: number of folds (each fold must retain both classes).
        l2: ridge strength passed to training.
        threshold: alert threshold for the held-out confusion counts.
        seed: shuffling seed.

    Raises:
        ValueError: if *k* < 2 or a fold would lose a class.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if k < 2:
        raise ValueError("k must be at least 2")
    positives = int(labels.sum())
    negatives = len(labels) - positives
    if positives < k or negatives < k:
        raise ValueError(
            f"need at least k={k} samples of each class "
            f"(have {positives} positive, {negatives} negative)"
        )
    rng = np.random.default_rng(seed)
    folds = _stratified_folds(labels, k, rng)
    results: list[FoldResult] = []
    all_indices = np.arange(len(labels))
    for fold_number, held_out in enumerate(folds):
        train_mask = np.ones(len(labels), dtype=bool)
        train_mask[held_out] = False
        train_idx = all_indices[train_mask]
        model, _ = train_logistic(
            features[train_idx], labels[train_idx], l2=l2
        )
        probabilities = model.predict_proba(features[held_out])
        held_labels = labels[held_out]
        confusion = confusion_from_alerts(
            probabilities[held_labels == 1] >= threshold,
            probabilities[held_labels == 0] >= threshold,
        )
        gap = float(
            probabilities[held_labels == 1].mean()
            - probabilities[held_labels == 0].mean()
        ) if (held_labels == 1).any() and (held_labels == 0).any() else 0.0
        results.append(FoldResult(
            fold=fold_number, confusion=confusion, auc_proxy=gap
        ))
    return CrossValidationReport(folds=results)
