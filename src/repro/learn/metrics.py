"""Detection metrics: confusion counts, TPR/FPR, ROC curves, AUC.

These back every number in Table V, the ROC curves of Figure 3, and the
cumulative-TPR plot of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts.

    Attributes:
        tp: attacks alerted on.
        fn: attacks missed.
        fp: benign requests alerted on.
        tn: benign requests passed.
    """

    tp: int
    fn: int
    fp: int
    tn: int

    @property
    def tpr(self) -> float:
        """True positive rate (detection rate); 0 when no attacks exist."""
        total = self.tp + self.fn
        return self.tp / total if total else 0.0

    @property
    def fpr(self) -> float:
        """False positive rate; 0 when no benign traffic exists."""
        total = self.fp + self.tn
        return self.fp / total if total else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when nothing was alerted."""
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        denominator = 2 * self.tp + self.fp + self.fn
        return 2 * self.tp / denominator if denominator else 0.0


def confusion_from_alerts(
    attack_alerts: np.ndarray | list[bool],
    benign_alerts: np.ndarray | list[bool],
) -> Confusion:
    """Build confusion counts from per-request alert flags."""
    attack = np.asarray(attack_alerts, dtype=bool)
    benign = np.asarray(benign_alerts, dtype=bool)
    return Confusion(
        tp=int(attack.sum()),
        fn=int((~attack).sum()),
        fp=int(benign.sum()),
        tn=int((~benign).sum()),
    )


@dataclass
class RocCurve:
    """One ROC curve: matched FPR/TPR arrays over a threshold sweep.

    Attributes:
        thresholds: descending probability thresholds.
        fpr: false positive rate at each threshold.
        tpr: true positive rate at each threshold.
    """

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray

    def auc(self, *, max_fpr: float = 1.0) -> float:
        """Trapezoidal area under the curve up to *max_fpr*.

        Figure 3 plots FPR only to 0.05; ``auc(max_fpr=0.05)`` gives the
        comparable partial area.
        """
        fpr = np.concatenate([[0.0], self.fpr, [1.0]])
        tpr = np.concatenate([[0.0], self.tpr, [1.0]])
        order = np.argsort(fpr, kind="stable")
        fpr, tpr = fpr[order], tpr[order]
        if max_fpr < 1.0:
            keep = fpr <= max_fpr
            boundary_tpr = np.interp(max_fpr, fpr, tpr)
            fpr = np.concatenate([fpr[keep], [max_fpr]])
            tpr = np.concatenate([tpr[keep], [boundary_tpr]])
        return float(np.trapezoid(tpr, fpr))


def roc_curve(
    attack_scores: np.ndarray, benign_scores: np.ndarray, *, points: int = 101
) -> RocCurve:
    """ROC from continuous scores by sweeping a probability threshold.

    The sweep covers [0, 1] plus every distinct observed score, so the curve
    is exact for the given data rather than grid-approximated.
    """
    attack = np.asarray(attack_scores, dtype=np.float64)
    benign = np.asarray(benign_scores, dtype=np.float64)
    grid = np.linspace(0.0, 1.0, points)
    thresholds = np.unique(np.concatenate([grid, attack, benign]))[::-1]
    tpr = np.array([
        (attack >= t).mean() if attack.size else 0.0 for t in thresholds
    ])
    fpr = np.array([
        (benign >= t).mean() if benign.size else 0.0 for t in thresholds
    ])
    return RocCurve(thresholds=thresholds, fpr=fpr, tpr=tpr)
