"""Learning substrate: PCG solver, logistic regression, detection metrics."""

from repro.learn.calibration import (
    CalibrationReport,
    ReliabilityBin,
    calibration_report,
    score_signature_set,
)
from repro.learn.crossval import (
    CrossValidationReport,
    FoldResult,
    cross_validate,
)
from repro.learn.logistic import (
    LogisticModel,
    TrainingReport,
    log_loss,
    sigmoid,
    train_logistic,
)
from repro.learn.metrics import (
    Confusion,
    RocCurve,
    confusion_from_alerts,
    roc_curve,
)
from repro.learn.pcg import PCGResult, pcg

__all__ = [
    "pcg",
    "PCGResult",
    "sigmoid",
    "log_loss",
    "LogisticModel",
    "TrainingReport",
    "train_logistic",
    "Confusion",
    "confusion_from_alerts",
    "RocCurve",
    "roc_curve",
    "cross_validate",
    "CrossValidationReport",
    "FoldResult",
    "calibration_report",
    "CalibrationReport",
    "ReliabilityBin",
    "score_signature_set",
]
