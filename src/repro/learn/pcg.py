"""Preconditioned Conjugate Gradients linear solver.

Section II-D: "We used the Preconditioned Conjugate Gradients (PCG) method
[11] to find the optimal parameters Θ of the regression model for each
bicluster."  The solver here is the standard PCG iteration (Eisenstat's
class of methods reduces to this with an SPD preconditioner); the logistic
trainer uses it with a Jacobi (diagonal) preconditioner to solve each
Newton system.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.obs.registry import get_registry

MatVec = Callable[[np.ndarray], np.ndarray]


def _record_solve(result: "PCGResult") -> "PCGResult":
    """Feed the solver's registry counters; returns the result unchanged.

    The paper leans on PCG for every per-bicluster Θ (Section II-D);
    iteration counts are the cheapest early warning that a Newton system
    went ill-conditioned, so each solve reports them process-wide.
    """
    registry = get_registry()
    registry.counter(
        "repro_pcg_solves_total", "PCG linear solves performed.",
    ).inc()
    registry.counter(
        "repro_pcg_iterations_total", "Total PCG iterations across solves.",
    ).inc(result.iterations)
    if not result.converged:
        registry.counter(
            "repro_pcg_nonconverged_total",
            "PCG solves that hit the iteration cap or lost SPD.",
        ).inc()
    return result


@dataclass
class PCGResult:
    """Solver outcome.

    Attributes:
        x: the solution estimate.
        iterations: CG iterations performed.
        residual_norm: final ``||b - Ax||``.
        converged: whether the tolerance was met.
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def pcg(
    matvec: MatVec,
    b: np.ndarray,
    *,
    preconditioner: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int | None = None,
) -> PCGResult:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    Args:
        matvec: computes ``A @ v`` (the Hessian is never materialized when
            the caller can fuse ``XᵀD X v``).
        b: right-hand side.
        preconditioner: diagonal of ``M`` for Jacobi preconditioning
            (``M⁻¹ r`` is element-wise division); ``None`` disables it.
        x0: starting point (zeros by default).
        tol: relative residual tolerance ``||r|| ≤ tol·||b||``.
        max_iterations: iteration cap (default: problem dimension × 2).
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if max_iterations is None:
        max_iterations = 2 * n
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if preconditioner is not None:
        diag = np.asarray(preconditioner, dtype=np.float64)
        if (diag <= 0).any():
            raise ValueError("Jacobi preconditioner must be positive")
    else:
        diag = None

    r = b - matvec(x)
    z = r / diag if diag is not None else r.copy()
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b))
    threshold = tol * max(b_norm, 1e-300)

    iterations = 0
    while iterations < max_iterations:
        r_norm = float(np.linalg.norm(r))
        if r_norm <= threshold:
            return _record_solve(PCGResult(x, iterations, r_norm, True))
        ap = matvec(p)
        pap = float(p @ ap)
        if pap <= 0:
            # Numerical loss of positive-definiteness; bail with best x.
            return _record_solve(PCGResult(x, iterations, r_norm, False))
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        z = r / diag if diag is not None else r
        rz_next = float(r @ z)
        beta = rz_next / rz
        p = z + beta * p
        rz = rz_next
        iterations += 1

    return _record_solve(
        PCGResult(x, iterations, float(np.linalg.norm(r)), False)
    )
