"""Probability calibration analysis for the signature models.

Section II-D: logistic regression's output "values are interpreted as the
estimated probability that a sample belongs to a class", and Section IV
leans on that interpretation ("this answer is probabilistic since our
framework gives a probability value").  The interpretation is only
honest if the probabilities are *calibrated* — among requests scored
p≈0.8, about 80% should actually be attacks.  This module quantifies
that: reliability bins, expected calibration error (ECE), and Brier
score, for any scored sample set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ReliabilityBin:
    """One bin of the reliability diagram.

    Attributes:
        low / high: probability interval covered.
        count: scored samples falling in the bin.
        mean_predicted: average predicted probability in the bin.
        observed_rate: empirical attack fraction in the bin.
    """

    low: float
    high: float
    count: int
    mean_predicted: float
    observed_rate: float

    @property
    def gap(self) -> float:
        """|predicted − observed| for this bin (0 = perfectly calibrated)."""
        return abs(self.mean_predicted - self.observed_rate)


@dataclass
class CalibrationReport:
    """Calibration summary over a scored sample set.

    Attributes:
        bins: non-empty reliability bins, in probability order.
        ece: expected calibration error (count-weighted mean bin gap).
        brier: Brier score (mean squared probability error).
        n_samples: scored samples.
    """

    bins: list[ReliabilityBin]
    ece: float
    brier: float
    n_samples: int


def calibration_report(
    probabilities: np.ndarray,
    labels: np.ndarray,
    *,
    n_bins: int = 10,
) -> CalibrationReport:
    """Build the reliability diagram and summary scores.

    Args:
        probabilities: predicted attack probabilities in [0, 1].
        labels: ground truth (1 = attack).
        n_bins: equal-width probability bins.

    Raises:
        ValueError: on shape mismatch, empty input, or out-of-range
            probabilities.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities and labels must align")
    if probabilities.size == 0:
        raise ValueError("need at least one scored sample")
    if ((probabilities < 0) | (probabilities > 1)).any():
        raise ValueError("probabilities must lie in [0, 1]")
    if n_bins < 2:
        raise ValueError("need at least two bins")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    # Right-inclusive final bin so p=1.0 lands somewhere.
    indices = np.clip(
        np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1
    )
    bins: list[ReliabilityBin] = []
    weighted_gap = 0.0
    for bin_number in range(n_bins):
        mask = indices == bin_number
        count = int(mask.sum())
        if count == 0:
            continue
        mean_predicted = float(probabilities[mask].mean())
        observed = float(labels[mask].mean())
        bins.append(ReliabilityBin(
            low=float(edges[bin_number]),
            high=float(edges[bin_number + 1]),
            count=count,
            mean_predicted=mean_predicted,
            observed_rate=observed,
        ))
        weighted_gap += count * abs(mean_predicted - observed)

    brier = float(np.mean((probabilities - labels) ** 2))
    return CalibrationReport(
        bins=bins,
        ece=weighted_gap / probabilities.size,
        brier=brier,
        n_samples=int(probabilities.size),
    )


def score_signature_set(
    signature_set,
    attack_payloads: list[str],
    benign_payloads: list[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Helper: set-level scores + labels for calibration analysis."""
    scores = [signature_set.evaluate(p)[0] for p in attack_payloads]
    scores += [signature_set.evaluate(p)[0] for p in benign_payloads]
    labels = [1.0] * len(attack_payloads) + [0.0] * len(benign_payloads)
    return np.asarray(scores), np.asarray(labels)
