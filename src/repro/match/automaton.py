"""Merged multi-pattern NFA with lazy subset determinization.

Patterns that carry no usable literal factor still need a cheap presence
gate before the engine pays for an exact ``finditer``.  Each such
pattern's Thompson NFA (built by :mod:`repro.regexlib.nfa`) is copied
into one shared state arena via :class:`~repro.regexlib.nfa.NfaFragment`
renumbering, a super-start state ε-fans out to every pattern's start, and
accepting states are tagged with their pattern's identity.  One subset
simulation of the merged machine then decides, for the whole group at
once, which patterns occur anywhere in the payload.

Determinization is lazy: transitions are computed on first use and cached
per ``(dfa_state, character)``, so the DFA only materializes the state
space real traffic exercises.  The super-start is re-injected into every
step, which makes the run an *unanchored* search exactly like
``NfaMatcher.search``.  A state budget guards against pathological
blow-up — exceeding it raises :class:`DfaBudgetError` and the engine
falls back to per-pattern ``finditer``, trading speed, never answers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.regexlib.nfa import NfaMatcher

_MAX_DFA_STATES = 10_000


class DfaBudgetError(RuntimeError):
    """Raised when lazy determinization exceeds its state budget."""


class UnmergeablePatternError(ValueError):
    """Raised for patterns the merged automaton cannot host.

    Boundary guards (``\\b``/``\\B``) need positional context that the
    character-keyed transition cache cannot carry.
    """


class MergedAutomaton:
    """A union automaton answering "which patterns occur?" in one pass.

    Attributes:
        tagged_patterns: the ``(tag, pattern)`` pairs hosted, in input
            order; tags come back out of :meth:`present`.
    """

    def __init__(self, tagged_patterns: Sequence[tuple[int, str]]) -> None:
        self.tagged_patterns = tuple(tagged_patterns)
        epsilon: list[list[int]] = [[]]
        charsets: list = [None]
        targets: list[int] = [-1]
        accept_tags: dict[int, int] = {}
        for tag, pattern in self.tagged_patterns:
            fragment = NfaMatcher(pattern).fragment()
            if fragment.has_guards:
                raise UnmergeablePatternError(
                    f"{pattern!r} uses \\b/\\B guards"
                )
            offset = len(charsets)
            for state in range(len(fragment.charsets)):
                epsilon.append(
                    [t + offset for t in fragment.epsilon[state]]
                )
                charsets.append(fragment.charsets[state])
                target = fragment.targets[state]
                targets.append(target + offset if target >= 0 else -1)
            epsilon[0].append(fragment.start + offset)
            accept_tags[fragment.accept + offset] = tag
        self._epsilon = epsilon
        self._charsets = charsets
        self._targets = targets
        self._accept_tags = accept_tags
        self._tag_total = len({tag for tag, _ in self.tagged_patterns})
        initial = frozenset(self._closure({0}))
        self._sets: list[frozenset[int]] = [initial]
        self._ids: dict[frozenset[int], int] = {initial: 0}
        self._rows: list[dict[str, int]] = [{}]
        self._state_tags: list[frozenset[int]] = [self._tags_of(initial)]

    def _closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        seen = set(states)
        epsilon = self._epsilon
        while stack:
            state = stack.pop()
            for nxt in epsilon[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def _tags_of(self, states: frozenset[int]) -> frozenset[int]:
        accept_tags = self._accept_tags
        return frozenset(
            accept_tags[s] for s in states if s in accept_tags
        )

    def _step(self, state_id: int, ch: str) -> int:
        moved = {0}
        charsets = self._charsets
        targets = self._targets
        for state in self._sets[state_id]:
            charset = charsets[state]
            if charset is not None and charset.matches(ch):
                moved.add(targets[state])
        key = frozenset(self._closure(moved))
        found = self._ids.get(key)
        if found is None:
            if len(self._sets) >= _MAX_DFA_STATES:
                raise DfaBudgetError(
                    f"merged DFA exceeded {_MAX_DFA_STATES} states"
                )
            found = len(self._sets)
            self._sets.append(key)
            self._rows.append({})
            self._state_tags.append(self._tags_of(key))
            self._ids[key] = found
        self._rows[state_id][ch] = found
        return found

    def present(self, text: str) -> set[int]:
        """Tags of every hosted pattern occurring anywhere in *text*.

        Raises:
            DfaBudgetError: when determinization blows the state budget;
                the caller must fall back to per-pattern matching.
        """
        found: set[int] = set()
        rows = self._rows
        state_tags = self._state_tags
        state = 0
        for ch in text:
            nxt = rows[state].get(ch)
            if nxt is None:
                nxt = self._step(state, ch)
            state = nxt
            tags = state_tags[state]
            if tags and not tags <= found:
                found |= tags
                if len(found) == self._tag_total:
                    break
        return found

    @property
    def dfa_states(self) -> int:
        """Materialized DFA state count (grows lazily with traffic)."""
        return len(self._sets)

    @property
    def nfa_states(self) -> int:
        """Size of the merged NFA state arena (including super-start)."""
        return len(self._charsets)

    def __reduce__(self):
        """Pickle as a rebuild recipe; the lazy DFA re-warms per process."""
        return (MergedAutomaton, (self.tagged_patterns,))
