"""Shared single-pass token scanning for literal-derived features.

The catalog is dominated by literal shapes — reserved words behind
``\\b…\\b`` guards plus punctuation fragments — and the legacy path paid
one ``finditer`` traversal per feature for them.  Here one compiled scan
over the case-folded payload indexes *every* occurrence of *every*
multi-character vocabulary token:

The scan pattern is a zero-width lookahead alternation
``(?=(tok1|tok2|…))`` with tokens ordered longest first.  At each payload
position the regex engine therefore reports the longest vocabulary token
matching there; any other token matching at the same position is
necessarily a prefix of the reported one, so a precomputed prefix closure
recovers the complete per-token occurrence lists exactly.  This is the
Aho–Corasick output-closure construction with CPython's C regex loop as
the scanning automaton.  Single-character tokens bypass the automaton
entirely — ``str.count``/``in`` are C-speed and exact.

Everything here assumes ASCII text: ``str.lower()`` agrees with
``re.IGNORECASE``'s simple case folding only there, which is why the
engine routes non-ASCII payloads around the scanner altogether.
"""

from __future__ import annotations

import re
from collections.abc import Iterable


def _is_word_char(ch: str) -> bool:
    """ASCII ``\\w`` membership; the empty string is a non-word edge."""
    return bool(ch) and (ch.isalnum() or ch == "_")


class ScanResult:
    """Occurrence index of one scanned payload.

    Attributes:
        lowered: the case-folded payload text that was scanned.
    """

    __slots__ = ("lowered", "_hits")

    def __init__(self, lowered: str, hits: dict[str, list[int]]) -> None:
        self.lowered = lowered
        self._hits = hits

    def positions(self, token: str) -> list[int]:
        """Ascending start offsets of every occurrence of *token*."""
        if len(token) == 1:
            out: list[int] = []
            find = self.lowered.find
            position = find(token)
            while position != -1:
                out.append(position)
                position = find(token, position + 1)
            return out
        return self._hits.get(token, [])

    def present(self, token: str) -> bool:
        """True when *token* occurs at least once."""
        if len(token) == 1:
            return token in self.lowered
        return token in self._hits

    def count(self, token: str) -> int:
        """Non-overlapping occurrences of *token*.

        Exactly ``sum(1 for _ in re.finditer(re.escape(token), text,
        re.IGNORECASE))``: occurrences are taken left to right, and one
        starting inside the previous accepted occurrence is skipped.
        """
        if len(token) == 1:
            return self.lowered.count(token)
        positions = self._hits.get(token)
        if not positions:
            return 0
        length = len(token)
        taken = 0
        end = 0
        for position in positions:
            if position >= end:
                taken += 1
                end = position + length
        return taken

    def count_word(self, token: str) -> int:
        """Non-overlapping occurrences of ``\\b<token>\\b``.

        The boundary filter is generic over the token's edge characters:
        a ``\\b`` between positions holds when exactly one side is a word
        character, so a rejected (boundary-less) occurrence does not
        advance the non-overlap cursor — mirroring ``finditer``, which
        never matched there at all.
        """
        positions = self.positions(token)
        if not positions:
            return 0
        lowered = self.lowered
        size = len(lowered)
        length = len(token)
        first_is_word = _is_word_char(token[0])
        last_is_word = _is_word_char(token[-1])
        taken = 0
        end = 0
        for position in positions:
            if position < end:
                continue
            before = lowered[position - 1] if position > 0 else ""
            if _is_word_char(before) == first_is_word:
                continue
            tail = position + length
            after = lowered[tail] if tail < size else ""
            if _is_word_char(after) == last_is_word:
                continue
            taken += 1
            end = tail
        return taken


class TokenScanner:
    """One compiled scan shared by every literal-derived feature.

    Attributes:
        vocabulary: the full token set the scanner indexes.
    """

    def __init__(self, tokens: Iterable[str]) -> None:
        vocabulary = set(tokens)
        for token in vocabulary:
            if not token:
                raise ValueError("empty token in scanner vocabulary")
            if not token.isascii() or token != token.lower():
                raise ValueError(
                    f"scanner tokens must be lowercase ASCII: {token!r}"
                )
        self.vocabulary = frozenset(vocabulary)
        multi = sorted(
            (t for t in vocabulary if len(t) > 1),
            key=lambda t: (-len(t), t),
        )
        self._closure = {
            token: tuple(u for u in multi if token.startswith(u))
            for token in multi
        }
        if multi:
            alternation = "|".join(re.escape(t) for t in multi)
            self._finditer = re.compile(f"(?=({alternation}))").finditer
        else:
            self._finditer = None

    def scan(self, lowered: str) -> ScanResult:
        """Index every multi-character token occurrence in *lowered*.

        *lowered* must already be case-folded ASCII (the engine lowers
        the normalized payload once for all tokens).
        """
        hits: dict[str, list[int]] = {}
        finditer = self._finditer
        if finditer is not None:
            closure = self._closure
            for match in finditer(lowered):
                start = match.start()
                for token in closure[match.group(1)]:
                    bucket = hits.get(token)
                    if bucket is None:
                        hits[token] = [start]
                    else:
                        bucket.append(start)
        return ScanResult(lowered, hits)
