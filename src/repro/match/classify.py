"""Pattern classification for the fused matching engine.

Every catalog feature is assigned a :class:`PatternPlan` that decides how
the fused engine (:mod:`repro.match.engine`) obtains its exact
``count_all`` value from one shared scan of the payload:

``literal``
    The pattern spells a plain (case-insensitive) literal string; the
    shared token scan yields its exact non-overlapping count directly.
``word``
    ``\\b<literal>\\b`` — the reserved-word shape that dominates the
    catalog.  Token-scan positions plus an ASCII word-boundary filter
    reproduce ``re.finditer`` exactly.
``factored``
    A real regex with *required literal factors*: every match must
    contain at least one of the factor strings.  Factor absence proves a
    count of zero without running the regex; ``finditer`` runs only when
    a factor is present.
``automaton``
    No usable factor, but inside the supported NFA subset of
    :mod:`repro.regexlib.nfa` with ``re.IGNORECASE``-faithful case
    semantics; presence is decided by the merged lazily-determinized
    automaton, and ``finditer`` runs only on presence.
``direct``
    Everything else: always counted with the compiled regex — the
    automatic fallback the tentpole requires for unfusable patterns.

Classification is deliberately conservative.  A factor is emitted only
when it is a *necessary* condition on the case-folded text, so skipping
``finditer`` can never change a count; anything ambiguous degrades to
``direct``, which is merely slower, never wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regexlib.nfa import (
    CharSet,
    Node,
    UnsupportedPatternError,
    parse_pattern,
)
from repro.regexlib.parser import (
    RegexSyntaxError,
    Token,
    split_alternation,
    tokenize,
)

KIND_LITERAL = "literal"
KIND_WORD = "word"
KIND_FACTORED = "factored"
KIND_AUTOMATON = "automaton"
KIND_DIRECT = "direct"

# A factor set larger than this gates nothing in practice; degrade.
_MAX_FACTORS = 8

# Escapes denoting one literal character with the same meaning ``re``
# gives them (shared with Python string escapes).
_ESCAPE_CHARS = {
    "n": "\n", "t": "\t", "r": "\r", "f": "\f", "v": "\v", "0": "\0",
}


@dataclass(frozen=True)
class PatternPlan:
    """How the fused engine evaluates one catalog pattern.

    Attributes:
        pattern: the original regex source.
        kind: one of the module's ``KIND_*`` constants.
        literal: the lowercased literal text (``literal``/``word`` kinds).
        factors: lowercased required-literal alternatives (``factored``
            kind); every match contains at least one of them.
    """

    pattern: str
    kind: str
    literal: str = ""
    factors: tuple[str, ...] = ()


def _token_char(token: Token) -> str | None:
    """The literal character *token* denotes, or None for regex syntax."""
    if token.kind == "literal":
        text = token.text
        return None if text == "." else text
    if token.kind == "escape":
        escaped = token.text[1]
        if escaped in _ESCAPE_CHARS:
            return _ESCAPE_CHARS[escaped]
        if escaped.isalnum():
            # Character classes (\d, \w, …), anchors, backreferences,
            # \xNN — none denote a fixed single character here.
            return None
        return escaped
    return None


def literal_of(pattern: str) -> str | None:
    """The lowercased literal *pattern* spells, or None for a real regex.

    Only ASCII literals qualify: the scanner matches on ``str.lower()``
    folded text, which agrees with ``re.IGNORECASE`` on ASCII alone.
    """
    try:
        tokens = tokenize(pattern)
    except RegexSyntaxError:
        return None
    chars = [_token_char(t) for t in tokens]
    if not chars or any(c is None for c in chars):
        return None
    literal = "".join(chars).lower()
    return literal if literal.isascii() else None


def word_literal_of(pattern: str) -> str | None:
    """The literal inside a ``\\b<literal>\\b`` pattern, or None."""
    try:
        tokens = tokenize(pattern)
    except RegexSyntaxError:
        return None
    if len(tokens) < 3:
        return None
    head, tail = tokens[0], tokens[-1]
    if head.kind != "escape" or head.text != r"\b":
        return None
    if tail.kind != "escape" or tail.text != r"\b":
        return None
    chars = [_token_char(t) for t in tokens[1:-1]]
    if not chars or any(c is None for c in chars):
        return None
    literal = "".join(chars).lower()
    return literal if literal.isascii() else None


def _charset_char(charset: CharSet) -> str | None:
    """The single lowercased character *charset* can yield, if exactly one.

    Case variants collapse (``re.IGNORECASE`` matching means the folded
    text always carries the lowercase form), so ``{'a', 'A'}`` is the
    single character ``'a'``.
    """
    if charset.negated or charset.ranges:
        return None
    folded = {c.lower() for c in charset.chars}
    if len(folded) != 1:
        return None
    return next(iter(folded))


def _single_char(node: Node) -> str | None:
    if node.kind != "char":
        return None
    return _charset_char(node.charset)


def _tree_factors(node: Node) -> frozenset[str] | None:
    """Required-literal factors of a syntax tree, or None when unknown.

    A returned set means: every string matching *node* contains at least
    one member (compared on case-folded text).  Concatenations merge runs
    of adjacent single-character nodes into longer factors and keep the
    most selective candidate; alternations union their branches.
    """
    kind = node.kind
    if kind == "char":
        ch = _single_char(node)
        return frozenset((ch,)) if ch is not None else None
    if kind in ("empty", "boundary"):
        return None
    if kind == "alt":
        union: set[str] = set()
        for child in node.children:
            factors = _tree_factors(child)
            if factors is None:
                return None
            union |= factors
            if len(union) > _MAX_FACTORS:
                return None
        return frozenset(union)
    if kind == "repeat":
        if node.low >= 1:
            return _tree_factors(node.children[0])
        return None
    if kind == "concat":
        candidates: list[frozenset[str]] = []
        run: list[str] = []

        def flush() -> None:
            if run:
                candidates.append(frozenset(("".join(run),)))
                run.clear()

        for child in node.children:
            ch = _single_char(child)
            if ch is not None:
                run.append(ch)
                continue
            if child.kind == "repeat" and child.low >= 1:
                inner = _single_char(child.children[0])
                if inner is not None:
                    # `ab+c`: the first repetition extends the run, the
                    # tail may repeat, so the run must close here.
                    run.append(inner)
                    flush()
                    continue
            flush()
            factors = _tree_factors(child)
            if factors is not None:
                candidates.append(factors)
        flush()
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda fs: (min(len(f) for f in fs), -len(fs)),
        )
    raise AssertionError(kind)


def _quantifier_min(text: str) -> int:
    """Minimum repetitions a quantifier token demands."""
    body = text[:-1] if text.endswith("?") and len(text) > 1 else text
    if body == "+":
        return 1
    if body in ("*", "?"):
        return 0
    if body.startswith("{") and body.endswith("}"):
        low = body[1:-1].split(",")[0]
        try:
            return int(low) if low else 0
        except ValueError:
            return 0
    return 0


def _required_run(branch: str) -> str | None:
    """Longest top-level mandatory literal run of one alternation branch.

    Only depth-0 literal characters count — anything inside a group may
    be optional or alternated away — and a character carrying a
    quantifier contributes once when the quantifier's minimum is ≥ 1 and
    closes the run either way.
    """
    try:
        tokens = tokenize(branch)
    except RegexSyntaxError:
        return None
    best = ""
    run: list[str] = []
    depth = 0

    def flush() -> None:
        nonlocal best
        text = "".join(run)
        if len(text) > len(best):
            best = text
        run.clear()

    for index, token in enumerate(tokens):
        if token.kind == "group_open":
            depth += 1
            flush()
            continue
        if token.kind == "group_close":
            depth -= 1
            continue
        if depth != 0:
            continue
        if token.kind in ("literal", "escape"):
            ch = _token_char(token)
            if ch is None:
                flush()
                continue
            nxt = tokens[index + 1] if index + 1 < len(tokens) else None
            if nxt is not None and nxt.kind == "quantifier":
                if _quantifier_min(nxt.text) >= 1:
                    run.append(ch)
                flush()
            else:
                run.append(ch)
            continue
        flush()
    flush()
    best = best.lower()
    return best if best and best.isascii() else None


def _fallback_factors(pattern: str) -> frozenset[str] | None:
    """Token-level factor extraction for patterns the NFA cannot parse.

    Anchored patterns like ``--\\s*-?\\s*$`` fall outside the NFA subset
    but still carry mandatory literal runs at alternation depth 0; one
    run per top-level branch is required, or no factor exists.
    """
    try:
        branches = split_alternation(pattern)
    except RegexSyntaxError:
        return None
    factors: set[str] = set()
    for branch in branches:
        run = _required_run(branch)
        if run is None:
            return None
        factors.add(run)
        if len(factors) > _MAX_FACTORS:
            return None
    return frozenset(factors)


def pattern_factors(pattern: str) -> tuple[str, ...]:
    """Required-literal factor alternatives of *pattern* (possibly empty).

    Every match of *pattern* (under ``re.IGNORECASE``) contains at least
    one of the returned lowercased strings; an empty tuple means no
    usable factor was found.
    """
    try:
        tree = parse_pattern(pattern)
    except (UnsupportedPatternError, RegexSyntaxError):
        factors = _fallback_factors(pattern)
    else:
        factors = _tree_factors(tree)
    if not factors or any(not f.isascii() for f in factors):
        return ()
    return tuple(sorted(factors))


def _automaton_safe(node: Node) -> bool:
    """True when the NFA's semantics match ``re.IGNORECASE`` on ASCII.

    Boundary guards need positional context the merged DFA does not
    carry, and a case-asymmetric non-folding charset (only reachable via
    ``\\xNN`` letter escapes) would disagree with ``re.IGNORECASE``.
    """
    if node.kind == "boundary":
        return False
    if node.kind == "char":
        charset = node.charset
        if not charset.fold:
            letters = {c for c in charset.chars if c.isalpha()}
            if any(c.swapcase() not in charset.chars for c in letters):
                return False
        return True
    return all(_automaton_safe(child) for child in node.children)


def classify_pattern(pattern: str) -> PatternPlan:
    """Build the :class:`PatternPlan` for one catalog pattern."""
    literal = literal_of(pattern)
    if literal:
        return PatternPlan(pattern, KIND_LITERAL, literal=literal)
    word = word_literal_of(pattern)
    if word:
        return PatternPlan(pattern, KIND_WORD, literal=word)
    factors = pattern_factors(pattern)
    if factors:
        return PatternPlan(pattern, KIND_FACTORED, factors=factors)
    try:
        tree = parse_pattern(pattern)
    except (UnsupportedPatternError, RegexSyntaxError):
        tree = None
    if tree is not None and _automaton_safe(tree):
        return PatternPlan(pattern, KIND_AUTOMATON)
    return PatternPlan(pattern, KIND_DIRECT)
