"""repro.match — fused single-pass feature matching.

The performance tentpole of the reproduction: instead of one compiled
regex traversal per feature per signature, the full catalog is compiled
into one combined plan (token scan + factor gates + merged NFA→DFA) so a
single pass over the normalized payload yields the entire feature count
vector, and per-signature scoring collapses to sparse gathers against
that shared vector.  See :mod:`repro.match.engine` for the construction
and DESIGN.md §14 for the exactness argument.

The fast path is on by default and wired behind the existing APIs
(``FeatureExtractor.extract``, ``SignatureSet.evaluate_normalized``);
``REPRO_FUSED=0`` in the environment, :func:`set_fused_enabled`, or the
:func:`fused_disabled` context manager force the legacy per-feature
reference loop — which is also how the conformance harness proves the
two paths identical.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.match.automaton import (
    DfaBudgetError,
    MergedAutomaton,
    UnmergeablePatternError,
)
from repro.match.bench import FusedMatchBench, bench_fused_matching
from repro.match.classify import (
    PatternPlan,
    classify_pattern,
    pattern_factors,
)
from repro.match.engine import (
    FusedMatcher,
    FusedSetEvaluator,
    MatchStats,
    matcher_for_patterns,
)
from repro.match.scanner import ScanResult, TokenScanner

__all__ = [
    "DfaBudgetError",
    "FusedMatchBench",
    "FusedMatcher",
    "FusedSetEvaluator",
    "MatchStats",
    "MergedAutomaton",
    "PatternPlan",
    "ScanResult",
    "TokenScanner",
    "UnmergeablePatternError",
    "bench_fused_matching",
    "classify_pattern",
    "fused_disabled",
    "fused_enabled",
    "matcher_for_patterns",
    "pattern_factors",
    "set_fused_enabled",
]

_ENV_FLAG = "REPRO_FUSED"
_enabled = os.environ.get(_ENV_FLAG, "1").strip().lower() not in {
    "0",
    "false",
    "off",
    "no",
}


def fused_enabled() -> bool:
    """True when the fused fast path is active (the default).

    Set ``REPRO_FUSED=0`` before startup to boot with the legacy path.
    """
    return _enabled


def set_fused_enabled(enabled: bool) -> bool:
    """Flip the fused fast path; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def fused_disabled():
    """Force the legacy per-feature path inside the ``with`` block.

    The conformance harness and the benchmark use this to drive the
    reference implementation against the same inputs.
    """
    previous = set_fused_enabled(False)
    try:
        yield
    finally:
        set_fused_enabled(previous)
