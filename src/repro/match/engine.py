"""The fused single-pass matching engine.

``FusedMatcher`` compiles a pattern list once into a three-tier plan
(:mod:`repro.match.classify`) and then produces the *entire* ``count_all``
vector from one scan of the normalized payload:

1. one token scan (:mod:`repro.match.scanner`) counts every literal and
   reserved-word feature exactly;
2. the same scan's occurrence index gates factored regexes — ``finditer``
   runs only when a required literal factor is present;
3. the merged automaton (:mod:`repro.match.automaton`) decides presence
   for factor-less patterns in one pass, again gating ``finditer``.

Counts are exact by construction: every skipped ``finditer`` is skipped
only because a *necessary* condition for any match is absent, and every
taken shortcut (literal/word counting) replays ``finditer``'s
non-overlapping left-to-right discipline.  Non-ASCII payloads — where
``str.lower()`` and ``re.IGNORECASE``'s folding can disagree — route
around the scanner entirely and run the reference loop.

``FusedSetEvaluator`` layers pSigene scoring on top: the union of all
signatures' features is matched once, and each signature reduces the
shared vector with a precomputed index gather and the same dot-product
expression as ``GeneralizedSignature.probability``, making probabilities
bit-identical to the per-signature path.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.learn.logistic import sigmoid
from repro.match.automaton import (
    DfaBudgetError,
    MergedAutomaton,
    UnmergeablePatternError,
)
from repro.match.classify import (
    KIND_AUTOMATON,
    KIND_DIRECT,
    KIND_FACTORED,
    KIND_LITERAL,
    KIND_WORD,
    classify_pattern,
)
from repro.match.scanner import TokenScanner
from repro.regexlib import compile_pattern
from repro.regexlib.nfa import UnsupportedPatternError
from repro.regexlib.parser import RegexSyntaxError


@dataclass
class MatchStats:
    """Traffic counters for one fused matcher (per process).

    Attributes:
        payloads: count vectors produced.
        ascii_fallbacks: payloads that took the full reference loop
            because they contained non-ASCII characters.
        finditer_calls: exact-count regex runs the gates let through.
        dfa_overflows: times the merged automaton blew its state budget
            (after which its patterns run ``finditer`` unconditionally).
    """

    payloads: int = 0
    ascii_fallbacks: int = 0
    finditer_calls: int = 0
    dfa_overflows: int = 0


class FusedMatcher:
    """One-pass ``count_all`` vectors for a fixed pattern list.

    Attributes:
        patterns: the pattern list, index-aligned with every output
            vector.
        plans: per-pattern :class:`~repro.match.classify.PatternPlan`.
        stats: :class:`MatchStats` traffic counters.
    """

    def __init__(self, patterns: Sequence[str]) -> None:
        self.patterns = tuple(patterns)
        self._compiled = [compile_pattern(p) for p in self.patterns]
        self.plans = tuple(classify_pattern(p) for p in self.patterns)
        literal_items: list[tuple[int, str]] = []
        word_items: list[tuple[int, str]] = []
        factored_items: list[tuple[int, tuple[str, ...]]] = []
        automaton_ids: list[int] = []
        direct_ids: list[int] = []
        for index, plan in enumerate(self.plans):
            if plan.kind == KIND_LITERAL:
                literal_items.append((index, plan.literal))
            elif plan.kind == KIND_WORD:
                word_items.append((index, plan.literal))
            elif plan.kind == KIND_FACTORED:
                factored_items.append((index, plan.factors))
            elif plan.kind == KIND_AUTOMATON:
                automaton_ids.append(index)
            else:
                direct_ids.append(index)
        automaton = None
        if automaton_ids:
            try:
                automaton = MergedAutomaton(
                    [(i, self.patterns[i]) for i in automaton_ids]
                )
            except (
                UnmergeablePatternError,
                UnsupportedPatternError,
                RegexSyntaxError,
            ):
                # Classification said "automaton" but construction
                # disagreed; degrade those patterns to the direct path.
                direct_ids.extend(automaton_ids)
                automaton_ids = []
        vocabulary = {token for _, token in literal_items}
        vocabulary.update(token for _, token in word_items)
        for _, factors in factored_items:
            vocabulary.update(factors)
        self._scanner = TokenScanner(vocabulary)
        self._literal_items = tuple(literal_items)
        self._word_items = tuple(word_items)
        self._factored_items = tuple(factored_items)
        self._automaton_ids = tuple(automaton_ids)
        self._automaton = automaton
        self._direct_ids = tuple(sorted(direct_ids))
        self.stats = MatchStats()

    def count_vector(self, normalized: str) -> np.ndarray:
        """Exact ``count_all`` vector, index-aligned with ``patterns``."""
        stats = self.stats
        stats.payloads += 1
        counts = np.zeros(len(self.patterns), dtype=np.int64)
        if not normalized:
            # Catalog patterns never match the empty string (validate()
            # rejects them), so the zero vector is already exact.
            return counts
        compiled = self._compiled
        if not normalized.isascii():
            # len(findall()) equals the finditer match count (groups only
            # change findall's element type, never its length) and runs
            # the whole non-overlapping search inside the C loop.
            stats.ascii_fallbacks += 1
            stats.finditer_calls += len(compiled)
            for index, regex in enumerate(compiled):
                counts[index] = len(regex.findall(normalized))
            return counts
        scan = self._scanner.scan(normalized.lower())
        for index, token in self._literal_items:
            value = scan.count(token)
            if value:
                counts[index] = value
        for index, token in self._word_items:
            value = scan.count_word(token)
            if value:
                counts[index] = value
        pending: list[int] = []
        for index, factors in self._factored_items:
            for factor in factors:
                if scan.present(factor):
                    pending.append(index)
                    break
        automaton = self._automaton
        if automaton is not None:
            try:
                pending.extend(automaton.present(normalized))
            except DfaBudgetError:
                stats.dfa_overflows += 1
                self._automaton = None
                pending.extend(self._automaton_ids)
        else:
            pending.extend(self._automaton_ids)
        pending.extend(self._direct_ids)
        stats.finditer_calls += len(pending)
        for index in pending:
            counts[index] = len(compiled[index].findall(normalized))
        return counts

    def describe(self) -> str:
        """One-line census of the compiled plan (``repro match explain``)."""
        kinds = {
            KIND_LITERAL: 0,
            KIND_WORD: 0,
            KIND_FACTORED: 0,
            KIND_AUTOMATON: 0,
            KIND_DIRECT: 0,
        }
        for plan in self.plans:
            kinds[plan.kind] += 1
        automaton = self._automaton
        merged = (
            f"{len(self._automaton_ids)} patterns/"
            f"{automaton.nfa_states} NFA states"
            if automaton is not None
            else "disabled"
        )
        return (
            f"{len(self.patterns)} patterns: "
            f"{kinds[KIND_WORD]} word, {kinds[KIND_LITERAL]} literal, "
            f"{kinds[KIND_FACTORED]} factored, "
            f"{kinds[KIND_AUTOMATON]} automaton, "
            f"{kinds[KIND_DIRECT]} direct | "
            f"scanner vocabulary {len(self._scanner.vocabulary)} | "
            f"merged automaton {merged}"
        )

    def __reduce__(self):
        """Pickle as a factory call so worker processes share the memo."""
        return (matcher_for_patterns, (self.patterns,))


@lru_cache(maxsize=64)
def matcher_for_patterns(patterns: tuple[str, ...]) -> FusedMatcher:
    """Process-wide :class:`FusedMatcher` memo.

    Signature subsets, threshold sweeps, and unpickled workers all reuse
    the same compiled plan for the same pattern tuple; ``stats`` are
    therefore per-process aggregates across every holder.
    """
    return FusedMatcher(patterns)


class FusedSetEvaluator:
    """Scores every signature of a set from one shared count vector.

    Attributes:
        matcher: the :class:`FusedMatcher` over the union of the
            signatures' feature patterns.
    """

    def __init__(self, signatures: Sequence) -> None:
        index_of: dict[str, int] = {}
        for signature in signatures:
            for definition in signature.features:
                if definition.pattern not in index_of:
                    index_of[definition.pattern] = len(index_of)
        ordered = sorted(index_of, key=index_of.__getitem__)
        self.matcher = matcher_for_patterns(tuple(ordered))
        gathers = [
            [index_of[d.pattern] for d in signature.features]
            for signature in signatures
        ]
        # One flat gather per request instead of one fancy-index per
        # signature; each signature then reads its contiguous slice.
        flat: list[int] = []
        slices: list[tuple[int, int]] = []
        for gather in gathers:
            slices.append((len(flat), len(flat) + len(gather)))
            flat.extend(gather)
        self._flat_gather = np.array(flat, dtype=np.intp)
        self._slices = slices
        self._coefficients = [
            np.asarray(signature.model.coefficients, dtype=np.float64)
            for signature in signatures
        ]
        self._intercepts = [
            float(signature.model.intercept) for signature in signatures
        ]

    def probabilities(self, normalized: str) -> list[float]:
        """Per-signature probabilities, bit-identical to the legacy path.

        Each signature's slice of the shared gathered vector equals its
        legacy ``feature_vector`` (float64, same order), and the score
        expression repeats ``GeneralizedSignature.probability`` verbatim,
        so not even the last ulp differs.
        """
        counts = self.matcher.count_vector(normalized).astype(np.float64)
        gathered = counts[self._flat_gather]
        out: list[float] = []
        for (start, stop), coefficients, intercept in zip(
            self._slices, self._coefficients, self._intercepts
        ):
            z = intercept + float(gathered[start:stop] @ coefficients)
            out.append(float(sigmoid(z)))
        return out
