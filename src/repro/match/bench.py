"""Fused-versus-legacy serial matching benchmark.

One signature set, one payload mix, two engines: the fused single-pass
path and the per-signature reference loop (forced via
:func:`repro.match.fused_disabled`).  Aggregate µs/request comes from the
best of several whole-trace passes (robust to scheduler noise); the
percentile columns come from one instrumented per-request pass with the
measured ``perf_counter`` overhead subtracted, mirroring the discipline
of :func:`repro.parallel.batch.bench_batch_matching`.

The result serializes to the machine-readable
``benchmarks/results/BENCH_matching.json`` artifact that CI's
``scripts/ci_bench_guard.py`` compares against the committed baseline —
the first entry of the ROADMAP's bench-trajectory ledger.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class FusedMatchBench:
    """One fused-versus-legacy serial matching measurement.

    Attributes:
        requests: payloads per timed pass.
        signatures: signature count of the measured set.
        patterns: distinct feature patterns the fused engine compiled.
        legacy_us_per_request: reference-loop mean µs per request.
        fused_us_per_request: fused-path mean µs per request.
        speedup: ``legacy / fused``.
        fused_p50_us: median fused per-request latency.
        fused_p95_us: 95th-percentile fused per-request latency.
        identical: every verdict (score bits and fired tuple) matched
            between the two engines.
    """

    requests: int
    signatures: int
    patterns: int
    legacy_us_per_request: float
    fused_us_per_request: float
    speedup: float
    fused_p50_us: float
    fused_p95_us: float
    identical: bool

    def to_bench_result(
        self, *, seed: int = 2012, corpus: dict[str, str] | None = None
    ):
        """The shared-schema :class:`repro.bench.BenchResult`.

        The canonical measured configuration is seeded with 2012 (both
        the bench context and the CI guard's fresh probe), so that is
        the default recorded seed.
        """
        from repro.bench import BenchResult

        return BenchResult(
            bench="matching",
            kind="perf",
            seed=seed,
            metrics={
                "requests": self.requests,
                "signatures": self.signatures,
                "patterns": self.patterns,
                "legacy_us_per_request": round(
                    self.legacy_us_per_request, 3
                ),
                "fused_us_per_request": round(
                    self.fused_us_per_request, 3
                ),
                "speedup": round(self.speedup, 3),
                "fused_p50_us": round(self.fused_p50_us, 3),
                "fused_p95_us": round(self.fused_p95_us, 3),
                "identical": self.identical,
            },
            corpus=corpus or {},
        )

    def to_json(self) -> str:
        """The ``BENCH_matching.json`` artifact body."""
        return self.to_bench_result().to_json()


def _best_pass_seconds(
    signature_set, normalized: list[str], repeats: int
) -> float:
    best = float("inf")
    evaluate = signature_set.evaluate_normalized
    for _ in range(repeats):
        start = time.perf_counter()
        for payload in normalized:
            evaluate(payload)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def bench_fused_matching(
    signature_set,
    payloads: Sequence[str],
    *,
    repeats: int = 5,
) -> FusedMatchBench:
    """Measure ``evaluate_normalized`` with and without the fused engine.

    Both engines see identical pre-normalized inputs (normalization cost
    is the same fixed prologue either way and is excluded, exactly like
    the exp4 matching bench).  Verdict parity is checked on every
    payload before any timing.
    """
    # Deferred: repro.parallel reaches back through the detector stack
    # into repro.match, so a module-level import would be circular.
    from repro.match import fused_disabled
    from repro.parallel.timing import timer_overhead

    normalized = [signature_set.normalizer(p) for p in payloads]
    signature_set.warm()

    fused_verdicts = [
        signature_set.evaluate_normalized(n) for n in normalized
    ]
    with fused_disabled():
        legacy_verdicts = [
            signature_set.evaluate_normalized(n) for n in normalized
        ]
    identical = fused_verdicts == legacy_verdicts

    fused_total = _best_pass_seconds(signature_set, normalized, repeats)
    with fused_disabled():
        legacy_total = _best_pass_seconds(
            signature_set, normalized, repeats
        )

    overhead = timer_overhead()
    samples = []
    evaluate = signature_set.evaluate_normalized
    for payload in normalized:
        start = time.perf_counter()
        evaluate(payload)
        samples.append(
            max(time.perf_counter() - start - overhead, 0.0)
        )
    samples.sort()
    count = len(samples)
    p50 = samples[count // 2] if count else 0.0
    p95 = samples[min(count - 1, int(count * 0.95))] if count else 0.0

    n = max(count, 1)
    fused_us = fused_total / n * 1e6
    legacy_us = legacy_total / n * 1e6
    evaluator = signature_set._fused_evaluator()
    patterns = (
        len(evaluator.matcher.patterns)
        if evaluator is not None and hasattr(evaluator, "matcher")
        else 0
    )
    return FusedMatchBench(
        requests=count,
        signatures=len(signature_set),
        patterns=patterns,
        legacy_us_per_request=legacy_us,
        fused_us_per_request=fused_us,
        speedup=legacy_us / fused_us if fused_us > 0 else 1.0,
        fused_p50_us=p50 * 1e6,
        fused_p95_us=p95 * 1e6,
        identical=identical,
    )
