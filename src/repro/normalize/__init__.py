"""Sample normalization: the paper's five pre-processing transformations."""

from repro.normalize.transforms import (
    DEFAULT_TRANSFORMS,
    HexDecode,
    Lowercase,
    Normalizer,
    Transform,
    UnicodeFold,
    UrlDecode,
    WhitespaceCanonicalize,
    normalize,
)

__all__ = [
    "Transform",
    "Lowercase",
    "UrlDecode",
    "UnicodeFold",
    "HexDecode",
    "WhitespaceCanonicalize",
    "Normalizer",
    "normalize",
    "DEFAULT_TRANSFORMS",
]
