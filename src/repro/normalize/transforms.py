"""The sample-normalization transformations.

Section II-A: "Once the attack samples are collected, we use a set of 5
transformations, including uppercase → lowercase, URL encoding → ascii
characters, and unicode → ascii characters."  The paper names three of the
five; the remaining two in this reproduction are hex-literal decoding and
whitespace canonicalization, both standard steps in SQLi pre-processing
(e.g. ModSecurity's transformation pipeline) that the named three imply.

Each transform is a small callable class; :class:`Normalizer` composes them.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.http.url import unquote
from repro.normalize.unicode_map import fold


class Transform:
    """Base class: a named, idempotent-ish string transformation."""

    name: str = "identity"

    def __call__(self, text: str) -> str:
        raise NotImplementedError


class Lowercase(Transform):
    """Transformation 1: uppercase → lowercase."""

    name = "lowercase"

    def __call__(self, text: str) -> str:
        return text.lower()


class UrlDecode(Transform):
    """Transformation 2: URL encoding → ASCII characters.

    Decodes repeatedly (bounded) so double-encoded payloads such as
    ``%2527`` (→ ``%27`` → ``'``) are fully unwrapped — a classic WAF
    evasion.  Also decodes ``+`` to space and IIS-style ``%uXXXX`` escapes.
    """

    name = "url-decode"

    #: Maximum decode passes; real payloads rarely nest deeper than 3.
    max_rounds: int = 4

    _PERCENT_U = re.compile(r"%u([0-9a-fA-F]{4})")

    def __call__(self, text: str) -> str:
        # ``+`` is a transport encoding: it means space only in the original
        # wire form, so it decodes exactly once — a ``%2B`` that decodes to
        # ``+`` in a later round is a literal plus, not a space.
        current = text.replace("+", " ")
        for _ in range(self.max_rounds):
            decoded = self._PERCENT_U.sub(
                lambda m: chr(int(m.group(1), 16)), current
            )
            decoded = unquote(decoded, plus_as_space=False)
            if decoded == current:
                break
            current = decoded
        return current


class UnicodeFold(Transform):
    """Transformation 3: unicode → ASCII characters."""

    name = "unicode-fold"

    def __call__(self, text: str) -> str:
        return fold(text)


class HexDecode(Transform):
    """Transformation 4: decode inline hex string literals.

    MySQL accepts ``0x61646d696e`` wherever a string is expected; decoding
    the literal exposes the keyword it hides (here ``admin``) to the feature
    extractor.  Only even-length literals that decode to printable ASCII are
    rewritten; numeric-looking hex (ids, hashes) is left alone when the
    decoded bytes are not printable.
    """

    name = "hex-decode"

    _HEX_LITERAL = re.compile(r"0x([0-9a-fA-F]{2,}?)(?![0-9a-fA-F])")

    def __call__(self, text: str) -> str:
        def replace(match: re.Match[str]) -> str:
            digits = match.group(1)
            if len(digits) % 2:
                return match.group(0)
            decoded = bytes.fromhex(digits)
            if all(0x20 <= b < 0x7F for b in decoded):
                return decoded.decode("ascii")
            return match.group(0)

        return self._HEX_LITERAL.sub(replace, text)


class WhitespaceCanonicalize(Transform):
    """Transformation 5: canonicalize whitespace and comment obfuscation.

    SQL inline comments (``/**/``, ``/*!...*/``) and mixed whitespace
    (tabs, newlines, multiple spaces) are all attacker-controlled separators
    that mean "one token boundary".  They collapse to a single space so that
    ``union/**/select`` and ``union   select`` present the same string to
    the feature extractor.
    """

    name = "whitespace"

    _INLINE_COMMENT = re.compile(r"/\*!?.*?\*/", re.S)
    _WHITESPACE_RUN = re.compile(r"[\s\x00\x0b\x0c]+")

    def __call__(self, text: str) -> str:
        text = self._INLINE_COMMENT.sub(" ", text)
        return self._WHITESPACE_RUN.sub(" ", text)


#: The paper's five transformations, in application order.  URL decoding runs
#: first so later passes see the decoded characters; lowering runs before
#: hex decoding so ``0X`` literals are normalized too.
DEFAULT_TRANSFORMS: tuple[Transform, ...] = (
    UrlDecode(),
    UnicodeFold(),
    Lowercase(),
    HexDecode(),
    WhitespaceCanonicalize(),
)


class Normalizer:
    """Composes transformations into a single callable used pipeline-wide."""

    def __init__(self, transforms: Iterable[Transform] | None = None) -> None:
        self.transforms: tuple[Transform, ...] = (
            tuple(transforms) if transforms is not None else DEFAULT_TRANSFORMS
        )

    def __call__(self, text: str) -> str:
        for transform in self.transforms:
            text = transform(text)
        return text

    def names(self) -> list[str]:
        """Names of the applied transformations, in order."""
        return [t.name for t in self.transforms]


def normalize(text: str) -> str:
    """Normalize *text* with the default five-transformation pipeline."""
    return _DEFAULT(text)


_DEFAULT = Normalizer()
