"""Unicode-to-ASCII folding table used by the normalizer.

Attackers evade keyword filters by substituting visually or semantically
equivalent Unicode code points for ASCII characters (fullwidth forms,
smart quotes, alternative spaces).  This table folds the substitutions the
SQLi evasion literature documents back to their ASCII equivalents; anything
unmapped and non-ASCII is dropped by the transform.
"""

from __future__ import annotations

#: Explicit single-character folds.
_EXPLICIT: dict[str, str] = {
    "‘": "'",  # left single quotation mark
    "’": "'",  # right single quotation mark
    "‚": "'",  # single low-9 quotation
    "′": "'",  # prime
    "“": '"',  # left double quotation mark
    "”": '"',  # right double quotation mark
    "″": '"',  # double prime
    "«": '"',
    "»": '"',
    "–": "-",  # en dash
    "—": "-",  # em dash
    "−": "-",  # minus sign
    " ": " ",  # no-break space
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    " ": " ",
    "　": " ",  # ideographic space
    "⁄": "/",  # fraction slash
    "∕": "/",  # division slash
    "／": "/",  # fullwidth solidus
}


def _fullwidth_folds() -> dict[str, str]:
    """Fullwidth ASCII variants (U+FF01..U+FF5E) fold to U+0021..U+007E."""
    return {chr(0xFF01 + i): chr(0x21 + i) for i in range(0x5E)}


#: The complete folding table.
FOLD_TABLE: dict[str, str] = {**_fullwidth_folds(), **_EXPLICIT}


def fold_char(ch: str) -> str:
    """Fold one character to ASCII; returns '' for unmapped non-ASCII."""
    if ord(ch) < 128:
        return ch
    return FOLD_TABLE.get(ch, "")


def fold(text: str) -> str:
    """Fold a whole string to ASCII."""
    return "".join(fold_char(ch) for ch in text)
