"""Parallel signature matching — the paper's proposed optimization.

Experiment 4 / future work: "the signature matching is completely
parallelizable — each parallel thread can match one signature and this
functionality is inbuilt in Bro (Bro's cluster mode).  But we do not have
this obvious performance optimization implemented yet."

This module implements it: signatures are sharded across simulated Bro
cluster workers, each request's per-signature matching cost is measured,
and the engine reports the *critical-path* latency — the slowest worker's
share — which is what a real cluster deployment would exhibit.  (True
thread parallelism would be defeated by the GIL for ``re`` matching, so
the cluster-mode model is both faithful to Bro and honest about Python.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.signature import SignatureSet
from repro.http.traffic import Trace
from repro.ids.rules import Detection
from repro.parallel.timing import timer_overhead


@dataclass
class ParallelRun:
    """Outcome of a cluster-mode inspection.

    Attributes:
        workers: number of simulated cluster workers.
        shard_sizes: signatures per worker.
        serial_us: mean per-request latency with one worker.
        critical_path_us: mean per-request latency with the shards running
            concurrently (max over workers, per request).
        speedup: ``serial / critical_path``.
        alert_flags: per-request verdicts (identical to serial matching).
    """

    workers: int
    shard_sizes: list[int]
    serial_us: float
    critical_path_us: float
    speedup: float
    alert_flags: np.ndarray


def _balanced_shards(costs: list[float], workers: int) -> list[list[int]]:
    """Greedy longest-processing-time assignment of signatures to workers."""
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    loads = [0.0] * workers
    shards: list[list[int]] = [[] for _ in range(workers)]
    for index in order:
        target = int(np.argmin(loads))
        shards[target].append(index)
        loads[target] += costs[index]
    return [sorted(shard) for shard in shards]


class ClusterModeEngine:
    """Shards a signature set across simulated Bro cluster workers.

    Implements the :class:`~repro.ids.engine.Detector` protocol, so it
    mounts directly on a :class:`~repro.ids.engine.SignatureEngine`:
    verdicts come from one :meth:`SignatureSet.evaluate` pass (sharding
    only changes *where* signatures run, never *what* they decide).

    Args:
        signature_set: the deployed signatures.
        workers: cluster size; capped at the signature count (one
            signature per worker is the paper's limiting case).
    """

    def __init__(self, signature_set: SignatureSet, workers: int = 4):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.signature_set = signature_set
        self.workers = min(workers, max(1, len(signature_set)))
        self.name = f"cluster-{self.workers}"

    def inspect(self, payload: str) -> Detection:
        """Cluster-mode verdict on one payload.

        Sharding is a latency model, not a decision procedure — every
        worker sees the same payload, so the union of shard verdicts
        equals the plain serial evaluation performed here.
        """
        score, fired = self.signature_set.evaluate(payload)
        return Detection(alert=bool(fired), score=score, matched_sids=fired)

    def run(self, trace: Trace, *, calibration: int = 50) -> ParallelRun:
        """Measure serial vs cluster-mode latency over *trace*.

        Args:
            trace: requests to inspect.
            calibration: how many requests to use for the signature-cost
                estimate that drives shard balancing.
        """
        signatures = self.signature_set.signatures
        normalizer = self.signature_set.normalizer
        n_signatures = len(signatures)
        if n_signatures == 0 or len(trace) == 0:
            return ParallelRun(
                workers=self.workers, shard_sizes=[],
                serial_us=0.0, critical_path_us=0.0, speedup=1.0,
                alert_flags=np.zeros(len(trace), dtype=bool),
            )

        # Calibration pass: estimate each signature's per-request cost.
        calibration_payloads = [
            normalizer(r.flat_payload())
            for r in trace.requests[:calibration]
        ]
        costs = []
        for signature in signatures:
            start = time.perf_counter()
            for payload in calibration_payloads:
                signature.probability(payload)
            costs.append(time.perf_counter() - start)
        shards = _balanced_shards(costs, self.workers)

        # Measurement pass: per-request, per-signature timings.  Each
        # timed interval includes one perf_counter pair of instrumentation;
        # left in place, that fixed cost would inflate the serial estimate
        # by n_signatures overheads per request but each worker's share by
        # only its shard's worth, flattering the reported speedup.  A
        # measured baseline is subtracted from every sample instead.
        overhead_us = timer_overhead() * 1e6
        per_signature_us = np.zeros((len(trace), n_signatures))
        flags = np.zeros(len(trace), dtype=bool)
        for row, request in enumerate(trace):
            payload = normalizer(request.flat_payload())
            for column, signature in enumerate(signatures):
                start = time.perf_counter()
                probability = signature.probability(payload)
                elapsed_us = (time.perf_counter() - start) * 1e6
                per_signature_us[row, column] = max(
                    elapsed_us - overhead_us, 0.0
                )
                if probability >= signature.threshold:
                    flags[row] = True

        serial = float(per_signature_us.sum(axis=1).mean())
        worker_time = np.zeros((len(trace), len(shards)))
        for worker, shard in enumerate(shards):
            if shard:
                worker_time[:, worker] = per_signature_us[:, shard].sum(
                    axis=1
                )
        critical = float(worker_time.max(axis=1).mean())
        return ParallelRun(
            workers=self.workers,
            shard_sizes=[len(s) for s in shards],
            serial_us=serial,
            critical_path_us=critical,
            speedup=serial / critical if critical > 0 else 1.0,
            alert_flags=flags,
        )
