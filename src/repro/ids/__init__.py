"""IDS substrate: rule semantics, rulesets, and the inspection engine."""

from repro.ids.engine import (
    Alert,
    Detector,
    EngineRun,
    PSigeneDetector,
    SignatureEngine,
)
from repro.ids.brolang import (
    BroPolicyLayer,
    BroSignature,
    PolicyAlert,
    SigParseError,
    parse_sig_file,
    render_sig_file,
    ruleset_from_sig_file,
)
from repro.ids.parallel import ClusterModeEngine, ParallelRun
from repro.ids.snortlang import (
    RulesParseError,
    parse_rules_file,
    render_rules_file,
    ruleset_from_rules_file,
)
from repro.ids.rules import (
    Detection,
    DeterministicRuleSet,
    Rule,
    RuleSet,
    ScoringRuleSet,
)

__all__ = [
    "Rule",
    "RuleSet",
    "Detection",
    "DeterministicRuleSet",
    "ScoringRuleSet",
    "Detector",
    "PSigeneDetector",
    "SignatureEngine",
    "EngineRun",
    "Alert",
    "ClusterModeEngine",
    "ParallelRun",
    "BroSignature",
    "BroPolicyLayer",
    "PolicyAlert",
    "SigParseError",
    "parse_sig_file",
    "render_sig_file",
    "ruleset_from_sig_file",
    "RulesParseError",
    "parse_rules_file",
    "render_rules_file",
    "ruleset_from_rules_file",
]
