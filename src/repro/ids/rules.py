"""Rule models and matching semantics for the baseline detectors.

Section III-A: "Snort and Bro use a deterministic approach to handle the
signatures ... these systems produce an alert only if all the requisites
defined in a signature are met.  In contrast, ModSecurity takes a
probabilistic approach and uses a scoring scheme where signatures are
weighted and can contribute to determine the level of anomaly for a
particular trace."  Both semantics are implemented here over a common
detector interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.normalize import Normalizer
from repro.regexlib import compile_pattern


@dataclass(frozen=True)
class Rule:
    """One IDS rule.

    Attributes:
        sid: rule identifier (Snort-style numeric id).
        name: human-readable message.
        pattern: the rule's regular expression.
        enabled: disabled rules ship with the set but never fire (70% of
            the Snort ruleset is disabled by default — Section I).
        weight: anomaly contribution for scoring rulesets.
        uses_regex: Table IV reports per-set regex usage; the few
            non-regex (plain content match) rules set this false.
    """

    sid: int
    name: str
    pattern: str
    enabled: bool = True
    weight: int = 1
    uses_regex: bool = True


@dataclass
class Detection:
    """Outcome of inspecting one payload.

    Attributes:
        alert: the set-level verdict.
        score: anomaly score (scoring sets) or matched-rule count.
        matched_sids: sids of every rule that matched.
    """

    alert: bool
    score: float
    matched_sids: list[int] = field(default_factory=list)


class RuleSet:
    """Base: a named collection of rules plus input handling.

    Args:
        name: ruleset name (``bro``, ``snort-et``...).
        rules: member rules.
        normalize_input: whether payloads are run through the full
            normalization pipeline before matching.  ModSecurity applies
            transformation chains; Snort/Bro effectively see the raw
            (url-decoded at most) request, which is exactly why evasion-
            encoded payloads slip past them.
        url_decode_only: apply only url-decoding + lowercasing (the
            Snort ``http_uri`` behaviour).
    """

    def __init__(
        self,
        name: str,
        rules: list[Rule],
        *,
        normalize_input: bool = False,
        url_decode_only: bool = False,
    ) -> None:
        self.name = name
        self.rules = list(rules)
        self.normalize_input = normalize_input
        self.url_decode_only = url_decode_only
        self._normalizer = Normalizer()
        self._compiled = {
            rule.sid: compile_pattern(rule.pattern)
            for rule in self.rules
            if rule.enabled
        }

    # -- Table IV statistics -------------------------------------------------

    @property
    def total_rules(self) -> int:
        """Ruleset size (Table IV column 2)."""
        return len(self.rules)

    @property
    def enabled_fraction(self) -> float:
        """Fraction of rules enabled by default (Table IV column 3)."""
        if not self.rules:
            return 0.0
        return sum(1 for r in self.rules if r.enabled) / len(self.rules)

    @property
    def regex_fraction(self) -> float:
        """Fraction of rules using regular expressions (Table IV column 4)."""
        if not self.rules:
            return 0.0
        return sum(1 for r in self.rules if r.uses_regex) / len(self.rules)

    def average_pattern_length(self) -> float:
        """Mean pattern length in characters (Section III-A statistic)."""
        if not self.rules:
            return 0.0
        return sum(len(r.pattern) for r in self.rules) / len(self.rules)

    # -- matching -------------------------------------------------------------

    def prepare(self, payload: str) -> str:
        """Apply this set's input handling (none / single decode / full)."""
        if self.normalize_input:
            return self._normalizer(payload)
        if self.url_decode_only:
            # Single-pass percent decode, as HTTP preprocessors do: no
            # ``+``-as-space, no %uXXXX, no double-decode — the gaps that
            # let encoded payloads slip past Snort and Bro.
            from repro.http.url import unquote

            return unquote(payload, plus_as_space=False).lower()
        return payload

    def inspect(self, payload: str) -> Detection:
        """Subclasses implement the set's alerting semantics."""
        raise NotImplementedError


class DeterministicRuleSet(RuleSet):
    """Snort/Bro semantics: any enabled rule match is an alert."""

    def inspect(self, payload: str) -> Detection:
        """Alert if any enabled rule matches the prepared payload."""
        text = self.prepare(payload)
        matched = [
            sid for sid, compiled in self._compiled.items()
            if compiled.search(text)
        ]
        return Detection(
            alert=bool(matched), score=float(len(matched)),
            matched_sids=matched,
        )


class ScoringRuleSet(RuleSet):
    """ModSecurity semantics: weighted rules versus an anomaly threshold."""

    def __init__(
        self,
        name: str,
        rules: list[Rule],
        *,
        threshold: int = 5,
        normalize_input: bool = True,
        url_decode_only: bool = False,
    ) -> None:
        super().__init__(
            name, rules,
            normalize_input=normalize_input,
            url_decode_only=url_decode_only,
        )
        self.threshold = threshold
        self._weights = {rule.sid: rule.weight for rule in self.rules}

    def inspect(self, payload: str) -> Detection:
        """Sum matched-rule weights; alert at or above the threshold."""
        text = self.prepare(payload)
        matched = [
            sid for sid, compiled in self._compiled.items()
            if compiled.search(text)
        ]
        score = float(sum(self._weights[sid] for sid in matched))
        return Detection(
            alert=score >= self.threshold, score=score, matched_sids=matched
        )
