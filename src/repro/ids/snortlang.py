"""Snort rule-format interop: render and parse ``.rules`` files.

The paper works from the shipped Snort/ET rule files ("Snort version 2920
and ET version 7098 rulesets"), where each rule is a single line of the
form::

    alert tcp $EXTERNAL_NET any -> $HTTP_SERVERS $HTTP_PORTS \
        (msg:"SQL union select"; flow:to_server,established; \
         content:"union"; nocase; pcre:"/union\\s+select/i"; \
         sid:19401; rev:1;)

Disabled rules are shipped commented out with ``# alert ...``.  This
module renders our rule objects in that format and parses the subset of
the syntax the SQLi rules use (``msg``, ``content``, ``pcre``, ``sid``)
back into runnable rulesets — the interop a practitioner would need to
compare or deploy the reproduced sets.
"""

from __future__ import annotations

import re

from repro.ids.rules import DeterministicRuleSet, Rule
from repro.regexlib.parser import literal_text

_HEADER = (
    "alert tcp $EXTERNAL_NET any -> $HTTP_SERVERS $HTTP_PORTS"
)

_OPTION_RE = re.compile(r'(\w+)\s*:\s*(?:"((?:[^"\\]|\\.)*)"|([^;]*))\s*;')
_RULE_RE = re.compile(r"^(#\s*)?alert\s+tcp\s+[^(]*\((.*)\)\s*$")


class RulesParseError(ValueError):
    """Raised on malformed .rules content (with a line number)."""


def render_rules_file(rules: list[Rule]) -> str:
    """Render rules as a Snort ``.rules`` file.

    Regex rules get a ``pcre`` option (case-insensitive, matching our
    engine's semantics) plus a fast-path ``content`` string when the
    pattern has extractable literal text; plain content rules get only
    ``content``.  Disabled rules are commented out.
    """
    lines: list[str] = []
    for rule in rules:
        options = [f'msg:"{rule.name}"', "flow:to_server,established"]
        literal = literal_text(rule.pattern).strip()
        if rule.uses_regex:
            if len(literal) >= 4 and '"' not in literal:
                options.append(f'content:"{literal[:20]}"')
                options.append("nocase")
            escaped = rule.pattern.replace("/", r"\/")
            options.append(f'pcre:"/{escaped}/i"')
        else:
            options.append(f'content:"{rule.pattern}"')
            options.append("nocase")
        options.append(f"sid:{rule.sid}")
        options.append("rev:1")
        line = f"{_HEADER} ({'; '.join(options)};)"
        if not rule.enabled:
            line = "# " + line
        lines.append(line)
    return "\n".join(lines) + "\n"


def _unescape_pcre(body: str) -> tuple[str, bool]:
    """Strip the /.../flags wrapper; returns (pattern, ignore_case)."""
    if not body.startswith("/"):
        raise RulesParseError(f"malformed pcre body {body!r}")
    closing = body.rfind("/")
    if closing == 0:
        raise RulesParseError(f"unterminated pcre body {body!r}")
    pattern = body[1:closing].replace(r"\/", "/")
    flags = body[closing + 1:]
    return pattern, "i" in flags


def parse_rules_file(text: str) -> list[Rule]:
    """Parse a .rules file back into rule objects.

    ``pcre`` wins over ``content`` when both are present (our engine is
    regex-based); content-only rules become literal patterns with
    ``uses_regex=False``.  Commented-out ``# alert`` lines load as
    disabled rules; other comments are skipped.
    """
    rules: list[Rule] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#") and "alert" not in line:
            continue
        match = _RULE_RE.match(line)
        if match is None:
            if line.startswith("#"):
                continue
            raise RulesParseError(f"line {line_number}: not a rule")
        disabled = bool(match.group(1))
        options: dict[str, str] = {}
        for name, quoted, bare in _OPTION_RE.findall(match.group(2)):
            options[name] = quoted if quoted else bare.strip()
        if "sid" not in options:
            raise RulesParseError(f"line {line_number}: rule without sid")
        sid = int(options["sid"])
        message = options.get("msg", f"rule {sid}")
        if "pcre" in options:
            pattern, _ignore_case = _unescape_pcre(options["pcre"])
            uses_regex = True
        elif "content" in options:
            pattern = re.escape(options["content"])
            uses_regex = False
        else:
            raise RulesParseError(
                f"line {line_number}: rule without pcre or content"
            )
        rules.append(Rule(
            sid=sid,
            name=message,
            pattern=pattern,
            enabled=not disabled,
            uses_regex=uses_regex,
        ))
    return rules


def ruleset_from_rules_file(
    text: str, name: str = "snort-file", **ruleset_kwargs
) -> DeterministicRuleSet:
    """Load a .rules file straight into a runnable deterministic ruleset."""
    return DeterministicRuleSet(name, parse_rules_file(text), **ruleset_kwargs)
