"""The IDS engine: drives traffic through detectors, collects alerts.

This is the reproduction of the paper's Bro deployment (Section III-C):
pSigene signatures were implemented in Bro via a ``count_all()`` policy
function; here any detector exposing ``inspect(payload) -> Detection`` can
be mounted, which puts pSigene and the baseline rulesets behind one
uniform interface for the accuracy (Table V) and performance (Experiment
4) measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.core.signature import SignatureSet
from repro.http.request import HttpRequest
from repro.http.traffic import Trace
from repro.ids.rules import Detection
from repro.obs import trace as obs_trace

if TYPE_CHECKING:  # imported lazily to avoid the ids <-> serve cycle
    from repro.serve.telemetry import Telemetry


class Detector(Protocol):
    """Anything the engine can mount."""

    name: str

    def inspect(self, payload: str) -> Detection:
        """Return the detector's verdict on one payload."""
        ...


class PSigeneDetector:
    """Adapter: a :class:`SignatureSet` behind the detector interface."""

    def __init__(self, signature_set: SignatureSet, name: str = "psigene"):
        self.signature_set = signature_set
        self.name = name

    def inspect(self, payload: str) -> Detection:
        """Alert when any generalized signature crosses its threshold.

        One :meth:`SignatureSet.evaluate` call normalizes the payload once
        and walks the signatures once; the earlier ``alerts()`` + ``score()``
        pair did both twice, doubling per-request work.
        """
        score, fired = self.signature_set.evaluate(payload)
        return Detection(alert=bool(fired), score=score, matched_sids=fired)


@dataclass
class Alert:
    """One alert record.

    Attributes:
        request_index: position of the offending request in the trace.
        detector: detector name.
        score: detector score at alert time.
        matched: rule sids / signature numbers that fired.
    """

    request_index: int
    detector: str
    score: float
    matched: list[int]


@dataclass
class EngineRun:
    """Result of one trace inspection.

    Attributes:
        detector: detector name.
        trace_name: inspected trace.
        alerts: alert records.
        alert_flags: per-request boolean alert vector.
        timings: per-request processing time in seconds (when measured).
        scores: per-request detector scores (populated by the batch path,
            which gets them for free; empty for plain serial runs).
    """

    detector: str
    trace_name: str
    alerts: list[Alert] = field(default_factory=list)
    alert_flags: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=bool)
    )
    timings: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    scores: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )

    @property
    def alert_count(self) -> int:
        """Number of alert records in this run."""
        return len(self.alerts)

    def timing_summary_us(self) -> tuple[float, float, float]:
        """(min, mean, max) per-request processing time in microseconds."""
        if self.timings.size == 0:
            return (0.0, 0.0, 0.0)
        return (
            float(self.timings.min() * 1e6),
            float(self.timings.mean() * 1e6),
            float(self.timings.max() * 1e6),
        )


class SignatureEngine:
    """Runs detectors over traces.

    Args:
        detector: the mounted detector.
        telemetry: optional :class:`~repro.serve.telemetry.Telemetry`
            sink.  When present every inspection — offline ``run`` or
            single request — feeds the same ``inspected``/``alerted``
            counters and ``service`` latency histogram the online
            gateway reports, so batch scoring and live serving share one
            metrics schema.
    """

    def __init__(
        self, detector: Detector, *, telemetry: "Telemetry | None" = None
    ) -> None:
        self.detector = detector
        self.telemetry = telemetry

    def inspect_payload(self, payload: str) -> Detection:
        """Inspect one raw payload string."""
        if self.telemetry is None:
            return self.detector.inspect(payload)
        start = time.perf_counter()
        detection = self.detector.inspect(payload)
        self.telemetry.record_inspection(
            detection.alert, time.perf_counter() - start
        )
        return detection

    def inspect_request(self, request: HttpRequest) -> Detection:
        """Inspect the detector-visible payload of one request."""
        return self.inspect_payload(request.payload())

    def run(self, trace: Trace, *, measure_time: bool = False) -> EngineRun:
        """Inspect every request of *trace*; optionally time each one."""
        with obs_trace.span(
            "engine.run",
            detector=self.detector.name,
            requests=len(trace),
        ):
            return self._run(trace, measure_time=measure_time)

    def _run(self, trace: Trace, *, measure_time: bool) -> EngineRun:
        flags = np.zeros(len(trace), dtype=bool)
        timings = (
            np.zeros(len(trace), dtype=np.float64)
            if measure_time
            else np.zeros(0, dtype=np.float64)
        )
        run = EngineRun(
            detector=self.detector.name, trace_name=trace.name,
        )
        measuring = measure_time or self.telemetry is not None
        for index, request in enumerate(trace):
            payload = request.payload()
            if measuring:
                start = time.perf_counter()
                detection = self.detector.inspect(payload)
                elapsed = time.perf_counter() - start
                if measure_time:
                    timings[index] = elapsed
                if self.telemetry is not None:
                    self.telemetry.record_inspection(
                        detection.alert, elapsed
                    )
            else:
                detection = self.detector.inspect(payload)
            if detection.alert:
                flags[index] = True
                run.alerts.append(Alert(
                    request_index=index,
                    detector=self.detector.name,
                    score=detection.score,
                    matched=detection.matched_sids,
                ))
        run.alert_flags = flags
        run.timings = timings
        return run

    def run_batch(
        self,
        trace: Trace,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
        normalization_cache: int = 4096,
    ) -> EngineRun:
        """Batched :meth:`run`: chunk the trace and fan chunks over processes.

        Produces an :class:`EngineRun` with alert flags, scores, and matched
        sids identical to the serial :meth:`run` (asserted by the parity
        tests).  With ``workers=1`` the batch path still pays off: payloads
        are normalized once through an LRU cache and each signature is
        evaluated in a single pass.
        """
        from repro.parallel.batch import run_batch

        result = run_batch(
            self.detector,
            trace,
            workers=workers,
            chunk_size=chunk_size,
            normalization_cache=normalization_cache,
        )
        if self.telemetry is not None:
            # Workers run in other processes, so per-request service
            # latencies are not observable here; the counters still are.
            self.telemetry.increment("inspected", len(trace))
            self.telemetry.increment("alerted", result.alert_count)
        return result
