"""The IDS engine: drives traffic through detectors, collects alerts.

This is the reproduction of the paper's Bro deployment (Section III-C):
pSigene signatures were implemented in Bro via a ``count_all()`` policy
function; here any detector exposing ``inspect(payload) -> Detection`` can
be mounted, which puts pSigene and the baseline rulesets behind one
uniform interface for the accuracy (Table V) and performance (Experiment
4) measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.core.signature import SignatureSet
from repro.http.request import HttpRequest
from repro.http.traffic import Trace
from repro.ids.rules import Detection
from repro.obs import trace as obs_trace
from repro.surfaces import (
    LEGACY_SURFACES,
    InjectionSurface,
    ScoreRequest,
    SurfaceDetection,
    score_request,
)

if TYPE_CHECKING:  # imported lazily to avoid the ids <-> serve cycle
    from repro.serve.telemetry import Telemetry


class Detector(Protocol):
    """Anything the engine can mount."""

    name: str

    def inspect(self, payload: str) -> Detection:
        """Return the detector's verdict on one payload."""
        ...


class PSigeneDetector:
    """Adapter: a :class:`SignatureSet` behind the detector interface."""

    def __init__(self, signature_set: SignatureSet, name: str = "psigene"):
        self.signature_set = signature_set
        self.name = name

    def inspect(self, payload: str) -> Detection:
        """Alert when any generalized signature crosses its threshold.

        One :meth:`SignatureSet.evaluate` call normalizes the payload once
        and walks the signatures once; the earlier ``alerts()`` + ``score()``
        pair did both twice, doubling per-request work.
        """
        score, fired = self.signature_set.evaluate(payload)
        return Detection(alert=bool(fired), score=score, matched_sids=fired)

    def inspect_request(
        self,
        request: HttpRequest,
        surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES,
    ) -> SurfaceDetection:
        """Score every selected surface of *request* through the fused set.

        Each extracted surface unit goes through the same
        :meth:`SignatureSet.evaluate` path as :meth:`inspect`; the
        per-surface verdicts fold into one alert with surface
        attribution.  With the default (legacy) selection the folded
        verdict is bit-identical to ``inspect(request.flat_payload())``.
        """
        return score_request(self.inspect, request, surfaces)


@dataclass
class Alert:
    """One alert record.

    Attributes:
        request_index: position of the offending request in the trace.
        detector: detector name.
        score: detector score at alert time.
        matched: rule sids / signature numbers that fired.
    """

    request_index: int
    detector: str
    score: float
    matched: list[int]


@dataclass
class EngineRun:
    """Result of one trace inspection.

    Attributes:
        detector: detector name.
        trace_name: inspected trace.
        alerts: alert records.
        alert_flags: per-request boolean alert vector.
        timings: per-request processing time in seconds (when measured).
        scores: per-request detector scores (populated by the batch path,
            which gets them for free; empty for plain serial runs).
    """

    detector: str
    trace_name: str
    alerts: list[Alert] = field(default_factory=list)
    alert_flags: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=bool)
    )
    timings: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    scores: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )

    @property
    def alert_count(self) -> int:
        """Number of alert records in this run."""
        return len(self.alerts)

    def timing_summary_us(self) -> tuple[float, float, float]:
        """(min, mean, max) per-request processing time in microseconds."""
        if self.timings.size == 0:
            return (0.0, 0.0, 0.0)
        return (
            float(self.timings.min() * 1e6),
            float(self.timings.mean() * 1e6),
            float(self.timings.max() * 1e6),
        )


class SignatureEngine:
    """Runs detectors over traces.

    Every entry point — single payload, single request, whole trace —
    funnels through :meth:`score` on a :class:`repro.surfaces.ScoreRequest`,
    so payload-level and surface-aware scoring share one code path (and
    one telemetry schema).  ``inspect_payload``/``inspect_request`` are
    thin wrappers kept for their call sites.

    Args:
        detector: the mounted detector.
        telemetry: optional :class:`~repro.serve.telemetry.Telemetry`
            sink.  When present every inspection — offline ``run`` or
            single request — feeds the same ``inspected``/``alerted``
            counters and ``service`` latency histogram the online
            gateway reports, so batch scoring and live serving share one
            metrics schema.  Surface-aware inspections additionally feed
            the ``repro_surface_*`` counters.
        surfaces: default surface selection for request-level entry
            points; the paper's query+form channels unless overridden
            (CLI ``--surfaces``).
    """

    def __init__(
        self,
        detector: Detector,
        *,
        telemetry: "Telemetry | None" = None,
        surfaces: tuple[InjectionSurface, ...] = LEGACY_SURFACES,
    ) -> None:
        self.detector = detector
        self.telemetry = telemetry
        self.surfaces = surfaces

    def score(self, request: ScoreRequest) -> Detection:
        """The unified entry point: score one :class:`ScoreRequest`.

        A payload-shaped request goes straight to the detector; a
        request-shaped one is extracted surface by surface and folded
        (:func:`repro.surfaces.score_request`).  Telemetry, when
        attached, sees both the whole-request inspection and — for
        surface-aware scoring — the per-surface counters.
        """
        start = time.perf_counter() if self.telemetry is not None else 0.0
        if request.payload is not None:
            detection: Detection = self.detector.inspect(request.payload)
        else:
            detection = score_request(
                self.detector.inspect, request.request, request.surfaces
            )
        if self.telemetry is not None:
            self.telemetry.record_inspection(
                detection.alert, time.perf_counter() - start
            )
            self.telemetry.record_surfaces(detection)
        return detection

    def inspect_payload(self, payload: str) -> Detection:
        """Inspect one raw payload string."""
        return self.score(ScoreRequest(payload=payload))

    def inspect_request(
        self,
        request: HttpRequest,
        surfaces: tuple[InjectionSurface, ...] | None = None,
    ) -> SurfaceDetection:
        """Inspect one request across its (selected) injection surfaces."""
        return self.score(ScoreRequest(
            request=request,
            surfaces=self.surfaces if surfaces is None else surfaces,
        ))

    def run(self, trace: Trace, *, measure_time: bool = False) -> EngineRun:
        """Inspect every request of *trace*; optionally time each one."""
        with obs_trace.span(
            "engine.run",
            detector=self.detector.name,
            requests=len(trace),
        ):
            return self._run(trace, measure_time=measure_time)

    def _run(self, trace: Trace, *, measure_time: bool) -> EngineRun:
        flags = np.zeros(len(trace), dtype=bool)
        timings = (
            np.zeros(len(trace), dtype=np.float64)
            if measure_time
            else np.zeros(0, dtype=np.float64)
        )
        run = EngineRun(
            detector=self.detector.name, trace_name=trace.name,
        )
        measuring = measure_time or self.telemetry is not None
        for index, request in enumerate(trace):
            if measuring:
                start = time.perf_counter()
                detection = score_request(
                    self.detector.inspect, request, self.surfaces
                )
                elapsed = time.perf_counter() - start
                if measure_time:
                    timings[index] = elapsed
                if self.telemetry is not None:
                    self.telemetry.record_inspection(
                        detection.alert, elapsed
                    )
                    self.telemetry.record_surfaces(detection)
            else:
                detection = score_request(
                    self.detector.inspect, request, self.surfaces
                )
            if detection.alert:
                flags[index] = True
                run.alerts.append(Alert(
                    request_index=index,
                    detector=self.detector.name,
                    score=detection.score,
                    matched=detection.matched_sids,
                ))
        run.alert_flags = flags
        run.timings = timings
        return run

    def run_batch(
        self,
        trace: Trace,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
        normalization_cache: int = 4096,
    ) -> EngineRun:
        """Batched :meth:`run`: chunk the trace and fan chunks over processes.

        Produces an :class:`EngineRun` with alert flags, scores, and matched
        sids identical to the serial :meth:`run` (asserted by the parity
        tests).  With ``workers=1`` the batch path still pays off: payloads
        are normalized once through an LRU cache and each signature is
        evaluated in a single pass.
        """
        from repro.parallel.batch import run_batch

        result = run_batch(
            self.detector,
            trace,
            workers=workers,
            chunk_size=chunk_size,
            normalization_cache=normalization_cache,
        )
        if self.telemetry is not None:
            # Workers run in other processes, so per-request service
            # latencies are not observable here; the counters still are.
            self.telemetry.increment("inspected", len(trace))
            self.telemetry.increment("alerted", result.alert_count)
        return result
