"""Emerging Threats 7098 SQLi rules (re-implementation).

Table IV reports 4,231 SQLi rules in the ET set, 0% enabled by default,
99% using regular expressions.  ET's SQLi rules are overwhelmingly
*per-vulnerability* signatures — one rule per reported injectable
page/parameter — which is why there are thousands of them, why they are
trivially generatable from a vulnerability feed, and why they ship
disabled (operators enable those matching software they actually run).

The generator below reproduces that structure: 4,231 rules enumerating
page × parameter × technique combinations, plus a 1% tail of plain
content rules (the non-regex fraction).
"""

from __future__ import annotations

from repro.ids.rules import DeterministicRuleSet, Rule

ET_RULE_COUNT = 4231

_PAGES = (
    "index", "view", "show", "article", "product", "news", "item",
    "gallery", "profile", "detail", "page", "content", "display",
    "category", "search", "list", "download", "forum", "thread", "post",
    "comment", "review", "event", "staff", "faq", "map",
)
_PARAMS = (
    "id", "cat", "pid", "uid", "nid", "aid", "cid", "sid", "tid", "item",
    "prod", "art", "num",
)
_TECHNIQUES = (
    r"'?\s*union\s+select",
    r"'?\s*and\s+[0-9]+=[0-9]+",
    r"'?\s*or\s+[0-9]+=[0-9]+",
    r"'\s*--",
    r"'?\s*order\s+by\s+[0-9]+",
    r"'?\s*and\s+sleep\(",
    r"%27",
    r"'?\s*;\s*drop",
    r"'?\s*and\s+benchmark\(",
    r"'?\s*having\s+[0-9]=[0-9]",
    r"'?\s*group\s+by",
    r"'?\s*select\s+concat",
    r"0x[0-9a-f]{6}",
)


def generate_et_rules(count: int = ET_RULE_COUNT) -> list[Rule]:
    """Generate the ET-style per-vulnerability rule population.

    Deterministic: rule *i* covers a fixed page/param/technique combination.
    All rules ship disabled (Table IV: 0% enabled); roughly 1% are plain
    content matches (99% regex usage).
    """
    rules: list[Rule] = []
    for i in range(count):
        page = _PAGES[i % len(_PAGES)]
        suffix = i // (len(_PAGES) * len(_PARAMS) * len(_TECHNIQUES))
        param = _PARAMS[(i // len(_PAGES)) % len(_PARAMS)]
        technique = _TECHNIQUES[
            (i // (len(_PAGES) * len(_PARAMS))) % len(_TECHNIQUES)
        ]
        if i % 100 == 99:
            # The ~1% non-regex tail: plain content signatures.
            pattern = f"{page}{suffix}.php?{param}="
            rules.append(Rule(
                sid=2010000 + i,
                name=f"ET WEB_SPECIFIC {page}{suffix}.php {param} SQLi "
                     "(content)",
                pattern=pattern.replace("?", r"\?").replace(".", r"\."),
                enabled=False,
                uses_regex=False,
            ))
            continue
        pattern = (
            rf"/{page}{suffix if suffix else ''}\.php\?[^&]*{param}="
            rf"[^&]*{technique}"
        )
        rules.append(Rule(
            sid=2010000 + i,
            name=f"ET WEB_SPECIFIC {page}.php {param} SQLi",
            pattern=pattern,
            enabled=False,
        ))
    return rules


def build_merged_snort_et_ruleset() -> DeterministicRuleSet:
    """The experiment detector: Snort ∪ ET, as Section III-A merges them.

    Enabled Snort rules do the detecting; ET's disabled per-vulnerability
    population rides along (it contributes to Table IV statistics and to
    rule-management realism, not to alerts).
    """
    from repro.ids.rulesets.snort import SNORT_RULES

    return DeterministicRuleSet(
        "snort-et",
        list(SNORT_RULES) + generate_et_rules(),
        normalize_input=False,
        url_decode_only=True,
    )
