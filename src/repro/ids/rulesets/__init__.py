"""The four baseline rulesets of Section III-A."""

from repro.ids.rulesets.bro import BRO_RULES, build_bro_ruleset
from repro.ids.rulesets.emerging_threats import (
    ET_RULE_COUNT,
    build_merged_snort_et_ruleset,
    generate_et_rules,
)
from repro.ids.rulesets.modsecurity import (
    ANOMALY_THRESHOLD,
    MODSEC_RULES,
    build_modsec_ruleset,
)
from repro.ids.rulesets.snort import SNORT_RULES, build_snort_ruleset

__all__ = [
    "BRO_RULES",
    "build_bro_ruleset",
    "SNORT_RULES",
    "build_snort_ruleset",
    "ET_RULE_COUNT",
    "generate_et_rules",
    "build_merged_snort_et_ruleset",
    "MODSEC_RULES",
    "ANOMALY_THRESHOLD",
    "build_modsec_ruleset",
]
