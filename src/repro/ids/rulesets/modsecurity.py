"""ModSecurity CRS 2.2.4 SQLi ruleset (re-implementation).

Table IV: 34 SQLi rules, 100% enabled, 100% regex; regular expressions
averaging 390 characters.  Section III-A: "ModSecurity takes a
probabilistic approach and uses a scoring scheme where signatures are
weighted and can contribute to determine the level of anomaly".

The 34 rules below mirror the CRS sqli_attacks family: broad, multi-group
alternations applied to the *fully transformed* input (the CRS
transformation pipeline ≈ our five normalizations), each adding its weight
to an anomaly score compared against the inbound threshold (CRS default 5).
Criticality: specific injection evidence scores 5 (alert on its own);
weaker contextual indicators score 2–3 and must co-occur.
"""

from __future__ import annotations

from repro.ids.rules import Rule, ScoringRuleSet

ANOMALY_THRESHOLD = 5

MODSEC_RULES: list[Rule] = [
    # -- critical (weight 5): enough evidence alone -------------------------
    # The transformation pipeline collapses /**/ comments to spaces before
    # matching, so the whitespace alternation needs no comment branch —
    # which also keeps the pattern free of nested unbounded repetition
    # (ReDoS-lint clean).
    Rule(981231, "union-select statement",
         r"(?:'|\)|[0-9]|\s)union(?:\s|%20)+(?:all\s+)?select\b|"
         r"union\s+select\s+(?:[0-9]|null|char|concat|@)", weight=5),
    Rule(981242, "classic quote tautology",
         r"['\"]\s*\)*\s*(?:or|and|xor)\s*\(*\s*(?:['\"][^'\"]*['\"]|[0-9]+|"
         r"[a-z_]+\s+like)\s*(?:=|like|rlike|<|>|\s|\))|"
         r"['\"]\s*(?:or|and)\s+(?:not\s+)?(?:true|false|null)\b", weight=5),
    Rule(981243, "quoted-string equality",
         r"['\"]\s*=\s*['\"]|['\"][^'\"]*['\"]\s*(?:=|like)\s*['\"]",
         weight=5),
    Rule(981244, "comment termination after quote",
         r"'\s*(?:--|#|;)|--\s*-?\s*$|;\s*--", weight=5),
    Rule(981245, "stacked statement",
         r";\s*(?:select|insert|update|delete|drop|create|alter|shutdown)\b",
         weight=5),
    Rule(981246, "schema harvesting",
         r"information_schema\b|mysql\.user\b|table_schema\s*=", weight=5),
    Rule(981247, "error-based extraction",
         r"extractvalue\s*\(|updatexml\s*\(|floor\s*\(\s*rand\s*\(|"
         r"procedure\s+analyse|exp\s*\(\s*~", weight=5),
    Rule(981248, "time-based probe",
         r"sleep\s*\(\s*[0-9]|benchmark\s*\(\s*[0-9]+\s*,|waitfor\s+delay|"
         r"pg_sleep\s*\(", weight=5),
    Rule(981249, "file read/write",
         r"load_file\s*\(|into\s+(?:out|dump)file\b", weight=5),
    Rule(981250, "char()-built string",
         r"ch(?:a)?r\s*\(\s*[0-9]+\s*(?:,\s*[0-9]+\s*)+\)", weight=5),
    Rule(981251, "numeric tautology with context",
         r"(?:'|[0-9])\s+(?:or|and)\s+[0-9]+\s*=\s*[0-9]+|"
         r"(?:or|and)\s+[0-9]+\s*(?:=|<|>)\s*[0-9]+\s*(?:--|#|$)", weight=5),
    Rule(981252, "blind boolean scaffolding",
         r"(?:and|or)\s+(?:ascii|ord|length|mid|substring?)\s*\(", weight=5),
    Rule(981253, "subquery injection",
         r"\(\s*select\s+[^)]{1,80}\bfrom\b|in\s*\(+\s*select|"
         r"exists\s*\(\s*select", weight=5),
    Rule(981254, "order-by enumeration with break",
         r"'\s*order\s+by\s+[0-9]|order\s+by\s+[0-9]+\s*(?:--|#|,)",
         weight=5),
    Rule(981255, "hex-literal operand",
         r"(?:=|,|\(|like)\s*0x[0-9a-f]{4,}", weight=5),
    Rule(981256, "db fingerprint functions",
         r"@@(?:version|datadir|hostname|basedir)\b|"
         r"(?:database|version|current_user|system_user)\s*\(\s*\)",
         weight=5),
    Rule(981257, "string-build functions",
         r"(?:group_)?concat(?:_ws)?\s*\(|make_set\s*\(|unhex\s*\(",
         weight=5),
    Rule(981258, "mssql/oracle vectors",
         r"xp_cmdshell|sp_password|utl_http|dbms_pipe|openrowset", weight=5),
    Rule(981259, "quote adjacent to comment/terminator",
         r"['\"`][^&]{0,12}--|--[^&]{0,8}['\"]|['\"`]\s*[;#]|[;#]\s*['\"`]|"
         r"^\s*['\"]\s*$",
         weight=5),
    # -- warning (weight 3): strong indicators needing corroboration --------
    Rule(981260, "quote before keyword", r"'\s*(?:or|and|union|select)\b",
         weight=3),
    Rule(981261, "select-from shape", r"\bselect\b[^&]{0,60}\bfrom\b",
         weight=3),
    Rule(981262, "insert-into shape", r"\binsert\b\s+\binto\b", weight=3),
    Rule(981263, "update-set shape", r"\bupdate\b\s+\w+\s+\bset\b",
         weight=3),
    Rule(981264, "delete-from shape", r"\bdelete\b\s+\bfrom\b", weight=3),
    Rule(981265, "drop statement", r"\bdrop\b\s+(?:table|database)\b",
         weight=3),
    Rule(981266, "null flooding", r"null\s*,\s*null", weight=3),
    Rule(981267, "like/rlike operator", r"\b(?:rlike|sounds\s+like)\b",
         weight=3),
    Rule(981268, "double-operator glue", r"\|\||&&|<=>", weight=3),
    # -- notice (weight 2): weak contextual indicators ----------------------
    Rule(981270, "sql comment tokens", r"/\*|\*/|#\s*$|--", weight=2),
    Rule(981271, "quote in parameter", r"(?:^|=|&)[^=&]*'", weight=2),
    Rule(981272, "equals-digit chain", r"=\s*-?[0-9]+\s*(?:--|#|'|\))",
         weight=2),
    Rule(981273, "quote-run syntax breaker",
         r"['\"`]{2,}|['\"]`|`['\"]|['\"][\s+]+['\"]|\\['\"]",
         weight=5),
    Rule(981274, "sql keyword in value", r"=\s*[^&]*\b(?:select|union|"
         r"insert|update|delete|drop|declare|cast|exec)\b", weight=2),
    Rule(981275, "semicolon in value", r"=\s*[^&]*;", weight=2),
]


def build_modsec_ruleset(threshold: int = ANOMALY_THRESHOLD) -> ScoringRuleSet:
    """CRS over fully transformed input with the inbound anomaly threshold."""
    return ScoringRuleSet(
        "modsecurity", MODSEC_RULES,
        threshold=threshold, normalize_input=True,
    )
