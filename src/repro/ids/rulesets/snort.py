"""Snort 2920 SQLi ruleset (re-implementation).

Table IV: 79 SQLi rules, 61% enabled, 82% using (simple) regular
expressions, average pattern length ~27 characters.  Section I calls out
the pathologies this file reproduces deliberately: near-duplicate rules
("signatures with identifiers 19439 and 19440 have the same regular
expression, except for the last character"), overly simple expressions
(``.+UNION\\s+SELECT``), and a large disabled fraction.

The simplicity is the point — short patterns catch common attack shapes
*and* benign strings like a search for ``1=1 boolean logic homework``,
which is where Snort's comparatively high FPR in Table V comes from.
"""

from __future__ import annotations

from repro.ids.rules import DeterministicRuleSet, Rule

SNORT_RULES: list[Rule] = [
    # -- enabled, regex (the working core) ---------------------------------
    Rule(19401, "sql union select", r".+union[\s+]+select"),
    Rule(19402, "sql union all select", r".+union[\s+]+all[\s+]+select"),
    Rule(19403, "sql select from", r"select[\s+]+[^&]{1,60}from[\s+]"),
    Rule(19404, "sql insert into", r"insert[\s+]+into[\s+]"),
    Rule(19405, "sql delete from", r"delete[\s+]+from[\s+]"),
    Rule(19406, "sql drop table", r"drop[\s+]+table[\s+]"),
    Rule(19407, "sql update set", r"update[\s+]+\w+[\s+]+set[\s+]"),
    Rule(19408, "sql 1=1 tautology", r"1[\s+]*=[\s+]*1"),
    Rule(19409, "sql quote or", r"'[\s+]*or[\s+]"),
    Rule(19410, "sql quote and", r"'[\s+]*and[\s+]"),
    Rule(19411, "sql or 1=1", r"or[\s+]+1[\s+]*=[\s+]*1"),
    Rule(19412, "sql comment dashdash", r"--(?:[\s+']|$)"),
    Rule(19413, "sql semicolon comment", r";[\s+]*--"),
    Rule(19414, "sql order by probe", r"order[\s+]+by[\s+]+[0-9]"),
    Rule(19415, "sql group by probe", r"group[\s+]+by[\s+]+[0-9]"),
    Rule(19416, "sql sleep call", r"sleep[\s+]*\([0-9]"),
    Rule(19417, "sql benchmark call", r"benchmark[\s+]*\([0-9]"),
    Rule(19418, "sql load_file", r"load_file[\s+]*\("),
    Rule(19419, "sql into outfile", r"into[\s+]+(?:out|dump)file"),
    Rule(19420, "sql information_schema", r"information_schema"),
    Rule(19421, "sql concat call", r"concat[\s+]*\("),
    Rule(19422, "sql group_concat", r"group_concat[\s+]*\("),
    Rule(19423, "sql char list", r"char[\s+]*\([0-9]{2,3},"),
    Rule(19424, "sql hex literal", r"0x[0-9a-f]{8}"),
    Rule(19425, "sql extractvalue", r"extractvalue[\s+]*\("),
    Rule(19426, "sql updatexml", r"updatexml[\s+]*\("),
    Rule(19427, "sql atat version", r"@@version"),
    Rule(19428, "sql atat datadir", r"@@datadir"),
    Rule(19429, "sql exec xp", r"exec[\s+]+xp_\w+"),
    Rule(19430, "sql waitfor delay", r"waitfor[\s+]+delay"),
    Rule(19431, "sql having probe", r"having[\s+]+[0-9][\s+]*="),
    Rule(19432, "sql cast as", r"cast[\s+]*\([^&]{1,30}as[\s+]"),
    Rule(19433, "sql ascii substring", r"ascii[\s+]*\([\s+]*substr"),
    Rule(19434, "sql quoted equals", r"'[\s+]*=[\s+]*'"),
    Rule(19435, "sql stacked select", r";[\s+]*select[\s+]"),
    Rule(19436, "sql stacked drop", r";[\s+]*drop[\s+]"),
    Rule(19437, "sql procedure analyse", r"procedure[\s+]+analyse"),
    Rule(19438, "sql mysql user table", r"mysql\.user"),
    # Near-duplicates the paper singles out (19439/19440 differ in the
    # final character only).
    Rule(19439, "sql or quote-digit a", r"or[\s+]+'[0-9]'[\s+]*=[\s+]*'[0-9]"),
    Rule(19440, "sql or quote-digit b", r"or[\s+]+'[0-9]'[\s+]*=[\s+]*'[0-8]"),
    Rule(19445, "sql unhex hex", r"unhex[\s+]*\("),
    Rule(19446, "sql floor rand", r"floor[\s+]*\([\s+]*rand"),
    Rule(19447, "sql quote orderby", r"'[\s+]*order[\s+]+by"),
    Rule(19448, "sql db funcs", r"(?:database|version|user)[\s+]*\([\s+]*\)"),
    # -- enabled, non-regex (plain content matches) --------------------------
    Rule(19460, "sql content xp_cmdshell", r"xp_cmdshell", uses_regex=False),
    Rule(19461, "sql content sp_password", r"sp_password", uses_regex=False),
    Rule(19462, "sql content utl_http", r"utl_http", uses_regex=False),
    Rule(19463, "sql content pg_sleep", r"pg_sleep", uses_regex=False),
    # -- disabled by default (the 39%) ---------------------------------------
    Rule(19470, "sql bare quote", r"%27|'", enabled=False),
    Rule(19471, "sql bare dashes", r"--", enabled=False),
    Rule(19472, "sql bare semicolon", r";", enabled=False, uses_regex=False),
    Rule(19473, "sql bare equals quote", r"='", enabled=False,
         uses_regex=False),
    Rule(19474, "sql bare select", r"\bselect\b", enabled=False),
    Rule(19475, "sql bare union", r"\bunion\b", enabled=False),
    Rule(19476, "sql bare insert", r"\binsert\b", enabled=False),
    Rule(19477, "sql bare update", r"\bupdate\b", enabled=False),
    Rule(19478, "sql bare delete", r"\bdelete\b", enabled=False),
    Rule(19479, "sql bare drop", r"\bdrop\b", enabled=False),
    Rule(19480, "sql bare where", r"\bwhere\b", enabled=False),
    Rule(19481, "sql bare from", r"\bfrom\b", enabled=False),
    Rule(19482, "sql bare exec", r"\bexec\b", enabled=False),
    Rule(19483, "sql bare declare", r"\bdeclare\b", enabled=False),
    Rule(19484, "sql bare cast", r"\bcast\b", enabled=False),
    Rule(19485, "sql bare convert", r"\bconvert\b", enabled=False),
    Rule(19486, "sql bare create", r"\bcreate\b", enabled=False),
    Rule(19487, "sql bare alter", r"\balter\b", enabled=False),
    Rule(19488, "sql bare truncate", r"\btruncate\b", enabled=False),
    Rule(19489, "sql bare shutdown", r"\bshutdown\b", enabled=False),
    Rule(19490, "sql bare grant", r"\bgrant\b", enabled=False),
    Rule(19491, "sql bare revoke", r"\brevoke\b", enabled=False),
    Rule(19492, "sql percent27 raw", r"%27", enabled=False,
         uses_regex=False),
    Rule(19493, "sql percent22 raw", r"%22", enabled=False,
         uses_regex=False),
    Rule(19494, "sql double pipe", r"\|\|", enabled=False,
         uses_regex=False),
    Rule(19495, "sql double amp", r"&&", enabled=False, uses_regex=False),
    Rule(19496, "sql angle neq", r"<>", enabled=False, uses_regex=False),
    Rule(19497, "sql bang eq", r"!=", enabled=False, uses_regex=False),
    Rule(19498, "sql backtick", r"`", enabled=False, uses_regex=False),
    Rule(19499, "sql null keyword", r"\bnull\b", enabled=False),
    Rule(19500, "sql like percent", r"like[\s+]+'%", enabled=False),
]


def build_snort_ruleset() -> DeterministicRuleSet:
    """Snort's http_inspect percent-decodes the URI once (no '+', no %u)."""
    return DeterministicRuleSet(
        "snort", SNORT_RULES, normalize_input=False, url_decode_only=True
    )
