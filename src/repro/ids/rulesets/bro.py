"""Bro 2.0 SQLi ruleset (re-implementation).

Section III-A: "We analyzed the 6 SQLi rules present on Bro v2.0 to detect
SQLi attacks.  All six of the rules make extensive usage of regular
expressions" with an average length of 247.7 characters (max 429, min 27).

The six rules below reproduce the *style* and operating point of Bro's
``detect-sqli``-era signatures: long, composite expressions that demand an
actual injection context (a quote break, a comment terminator, or an SQL
statement shape inside a parameter) before alerting.  That conservatism is
what gives Bro its zero false positives — and its blindness to encoded or
whitespace-obfuscated payloads, which it inspects raw.
"""

from __future__ import annotations

from repro.ids.rules import DeterministicRuleSet, Rule

_SQL_VERBS = r"(?:select|insert|update|delete|drop|union|alter|create)"

BRO_RULES: list[Rule] = [
    Rule(
        sid=1,
        name="bro sqli-url-quote-context",
        pattern=(
            r"(?:^|[?&])[^=&]*=[^&]*(?:'|%27|\")[\s+]*\)*[\s+]*"
            r"(?:or|and|xor|\|\||&&)[\s+]*\(*[\s+]*"
            r"(?:'[^'&]*'|\"[^\"&]*\"|[0-9]+|true|false|null|"
            r"[a-z_]+[\s+]+like)"
            r"[\s+]*(?:=|<|>|<=|>=|<>|like|rlike|regexp|is|')"
        ),
    ),
    Rule(
        sid=2,
        name="bro sqli-union-statement",
        pattern=(
            r"(?:^|[?&])[^=&]*=[^&]*(?:'|%27|\)|[0-9])[\s+]*union[\s+]+(?:all[\s+]+)?select"
            r"[\s+]+(?:[0-9]|null|char|concat|\*|@)"
            r"(?:[^&]*\bfrom\b)?"
        ),
    ),
    Rule(
        sid=3,
        name="bro sqli-comment-termination",
        pattern=(
            r"(?:^|[?&])[^=&]*=[^&]*(?:'|%27|\"|[0-9][\s+])[`'\"\s+,]*"
            r"(?:(?:or|and)[\s+]+[^&]{1,40})?"
            r"(?:--(?:[\s+'\",]|$|%20)|--$|#[\s+]*$|;[\s+]*--)"
        ),
    ),
    Rule(
        sid=4,
        name="bro sqli-statement-injection",
        pattern=(
            r"(?:^|[?&])[^=&]*=[^&]*;[\s+]*" + _SQL_VERBS +
            r"[\s+]+(?:\*|[a-z_]+|into|from|table)\b[^&]*"
            r"(?:from|into|set|table|values|where)?"
        ),
    ),
    Rule(
        sid=5,
        name="bro sqli-function-probe",
        pattern=(
            r"(?:^|[?&])[^=&]*=[^&]*(?:'|%27|[\s+]|\()"
            r"(?:benchmark|sleep|load_file|extractvalue|updatexml|"
            r"group_concat|information_schema)[\s+]*(?:\(|\.)"
        ),
    ),
    Rule(
        sid=6,
        name="bro sqli-numeric-tautology",
        pattern=(
            r"(?:^|[?&])[^=&]*=(?:[^&]*[0-9]'?|)[\s+]*(?:or|and)[\s+]+"
            r"'?[0-9]+'?[\s+]*=[\s+]*'?[0-9]+"
        ),
    ),
]


def build_bro_ruleset() -> DeterministicRuleSet:
    """Bro's HTTP analyzer percent-decodes the URI once; nothing more."""
    return DeterministicRuleSet(
        "bro", BRO_RULES, normalize_input=False, url_decode_only=True
    )
