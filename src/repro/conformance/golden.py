"""Golden-corpus snapshots: verdicts pinned across PRs.

The oracle answers "do all paths agree *today*"; the golden corpus
answers "do they still say what they said when this file was recorded".
A snapshot is a JSONL file — one meta header line, then one record per
payload with the baseline verdict — checked into ``conformance/golden/``
so a verdict regression (a signature that stops firing, a score that
drifts past tolerance) fails ``repro conform diff`` even when every
path still agrees with every other path.

JSONL because diffs stay line-per-payload in review, and because a
snapshot can be streamed without loading the whole corpus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.conformance.verdict import Divergence, Verdict

__all__ = [
    "GOLDEN_SCHEMA",
    "GoldenCorpus",
    "GoldenError",
    "diff_golden",
    "read_golden",
    "write_golden",
]

GOLDEN_SCHEMA = 1

#: Score drift allowed against a recorded snapshot.  Wider than the
#: in-process tolerance: the snapshot crossed a JSON round-trip and may
#: be replayed on a different BLAS/libm build.
GOLDEN_SCORE_TOLERANCE = 1e-6


class GoldenError(ValueError):
    """A snapshot file that cannot be parsed or fails its schema."""


@dataclass
class GoldenCorpus:
    """One parsed snapshot.

    Attributes:
        meta: the header record (schema, detector, seed, budget, n).
        payloads: recorded payloads, in file order.
        verdicts: recorded baseline verdicts, aligned with payloads.
        ids: per-record ids (``g-00000``...), aligned with payloads.
    """

    meta: dict[str, Any]
    payloads: list[str] = field(default_factory=list)
    verdicts: list[Verdict] = field(default_factory=list)
    ids: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.payloads)


def write_golden(
    path: str,
    payloads: list[str],
    verdicts: list[Verdict],
    *,
    detector: str,
    seed: int,
    budget: str,
    extra: dict[str, Any] | None = None,
) -> None:
    """Record a snapshot: one meta line, then one record per payload."""
    if len(payloads) != len(verdicts):
        raise ValueError(
            f"{len(payloads)} payloads for {len(verdicts)} verdicts"
        )
    meta = {
        "schema": GOLDEN_SCHEMA,
        "kind": "repro-conformance-golden",
        "detector": detector,
        "seed": seed,
        "budget": budget,
        "n": len(payloads),
        **(extra or {}),
    }
    with open(path, "w") as handle:
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for index, (payload, verdict) in enumerate(
            zip(payloads, verdicts)
        ):
            record = {
                "id": f"g-{index:05d}",
                "payload": payload,
                **verdict.to_dict(),
            }
            handle.write(
                json.dumps(record, sort_keys=True, ensure_ascii=False)
                + "\n"
            )


def read_golden(path: str) -> GoldenCorpus:
    """Parse a snapshot file.

    Raises:
        GoldenError: missing/invalid header, malformed record lines, or
            a record count that contradicts the header.
    """
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise GoldenError(f"{path}: empty snapshot")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise GoldenError(f"{path}:1: bad meta line: {exc}") from exc
    if (
        not isinstance(meta, dict)
        or meta.get("kind") != "repro-conformance-golden"
    ):
        raise GoldenError(f"{path}:1: not a conformance golden header")
    if meta.get("schema") != GOLDEN_SCHEMA:
        raise GoldenError(
            f"{path}: schema {meta.get('schema')!r} != {GOLDEN_SCHEMA}"
        )
    corpus = GoldenCorpus(meta=meta)
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise GoldenError(f"{path}:{number}: bad record: {exc}") from exc
        try:
            corpus.ids.append(str(record["id"]))
            corpus.payloads.append(record["payload"])
            score = record["score"]
            corpus.verdicts.append(Verdict(
                alert=bool(record["alert"]),
                score=None if score is None else float(score),
                fired=tuple(int(s) for s in record["fired"]),
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise GoldenError(
                f"{path}:{number}: incomplete record: {exc}"
            ) from exc
    declared = meta.get("n")
    if declared is not None and declared != len(corpus):
        raise GoldenError(
            f"{path}: header declares {declared} records, "
            f"found {len(corpus)}"
        )
    return corpus


def diff_golden(
    golden: GoldenCorpus,
    verdicts: list[Verdict],
    *,
    score_tolerance: float = GOLDEN_SCORE_TOLERANCE,
    path_name: str = "current",
) -> list[Divergence]:
    """Diff freshly computed verdicts against a recorded snapshot."""
    from repro.conformance.verdict import diff_verdicts

    return diff_verdicts(
        "golden", golden.verdicts, path_name, verdicts,
        golden.payloads, score_tolerance=score_tolerance,
    )
