"""The registered detector paths the oracle can drive.

A *path* is one way this repo turns a payload into a verdict: the serial
``detector.inspect`` loop, the offline engine's ``run``, the batched
``run_batch`` fan-out at several worker counts, cluster-mode sharding,
and a live gateway TCP round-trip.  Every path reduces its native output
to the :class:`~repro.conformance.verdict.Verdict` normal form, so the
oracle can compare them without knowing how any of them work inside.

Paths declare applicability via :meth:`DetectorPath.supports`: the
cluster path needs a ``signature_set`` to shard, the multiprocess batch
paths need a picklable detector, and everything else takes any
:class:`~repro.ids.engine.Detector`.
"""

from __future__ import annotations

import asyncio
import pickle

from repro.conformance.verdict import ConformanceError, Verdict
from repro.core.signature import SignatureSet
from repro.http.request import HttpRequest
from repro.http.traffic import Trace

__all__ = [
    "BatchPath",
    "ClusterPath",
    "DetectorPath",
    "EngineRunPath",
    "GatewayFramedPath",
    "GatewayPath",
    "LegacySerialPath",
    "SerialPath",
    "ShardedGatewayPath",
    "SurfacesLegacyParityPath",
    "default_paths",
]

#: Worker counts the batch paths cover by default — 1 exercises the
#: in-process chunk loop, 2 and 8 the real multiprocess fan-out.
DEFAULT_WORKER_COUNTS = (1, 2, 8)


def _as_trace(payloads: list[str], name: str) -> Trace:
    """Wrap raw payload strings as a query-only trace.

    ``HttpRequest(query=p).flat_payload()`` round-trips the string
    unchanged, so trace-driven paths see byte-identical detector input.
    """
    return Trace(
        name=name, requests=[HttpRequest(query=p) for p in payloads]
    )


class DetectorPath:
    """One registered way of computing verdicts.

    Subclasses set :attr:`name` and implement :meth:`run`; they may
    narrow :meth:`supports` when the path needs detector internals.
    """

    name = "abstract"

    def supports(self, detector) -> bool:
        """Can this path drive *detector*?"""
        del detector
        return True

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """Verdicts for *payloads*, in order.

        Raises:
            ConformanceError: when the path cannot produce a verdict for
                every payload (the oracle turns this into a path-level
                divergence rather than crashing the whole run).
        """
        raise NotImplementedError


class SerialPath(DetectorPath):
    """Ground truth: one ``detector.inspect`` call per payload."""

    name = "serial"

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """One ``inspect`` call per payload, in order."""
        return [
            Verdict.from_detection(detector.inspect(p)) for p in payloads
        ]


class LegacySerialPath(DetectorPath):
    """The serial loop with the fused fast path forced off.

    Every other path inherits whatever engine ``SignatureSet`` routes to
    (the fused one, by default); this path pins the per-signature
    reference loop, so any fused-vs-legacy disagreement — scores to the
    last ulp, verdicts exactly — surfaces as a divergence against
    ``serial`` instead of silently shifting every path together.
    """

    name = "serial-legacy"

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """One ``inspect`` call per payload under ``fused_disabled()``."""
        from repro.match import fused_disabled

        with fused_disabled():
            return [
                Verdict.from_detection(detector.inspect(p))
                for p in payloads
            ]


class EngineRunPath(DetectorPath):
    """The offline :meth:`~repro.ids.engine.SignatureEngine.run` loop.

    The serial engine only records scores for alerting requests, so
    non-alert verdicts carry ``score=None`` and the oracle skips their
    score comparison.
    """

    name = "engine-run"

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """Verdicts reconstructed from one ``EngineRun`` over a trace."""
        from repro.ids.engine import SignatureEngine

        run = SignatureEngine(detector).run(
            _as_trace(payloads, "conform-engine")
        )
        by_index = {alert.request_index: alert for alert in run.alerts}
        verdicts: list[Verdict] = []
        for index in range(len(payloads)):
            alert = by_index.get(index)
            if alert is None:
                verdicts.append(Verdict(
                    alert=bool(run.alert_flags[index]), score=None, fired=()
                ))
            else:
                verdicts.append(Verdict(
                    alert=True,
                    score=float(alert.score),
                    fired=tuple(int(s) for s in alert.matched),
                ))
        return verdicts


class BatchPath(DetectorPath):
    """The chunked :func:`repro.parallel.batch.run_batch` fan-out."""

    def __init__(
        self, workers: int = 1, *, chunk_size: int | None = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.name = f"batch-w{workers}"

    def supports(self, detector) -> bool:
        """Multiprocess fan-out needs a picklable detector."""
        if self.workers == 1:
            return True
        try:  # multiprocess fan-out ships the detector to workers
            pickle.dumps(detector)
        except Exception:
            return False
        return True

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """Verdicts from one chunked ``run_batch`` execution."""
        from repro.parallel.batch import run_batch

        run = run_batch(
            detector,
            _as_trace(payloads, f"conform-{self.name}"),
            workers=self.workers,
            chunk_size=self.chunk_size,
        )
        by_index = {alert.request_index: alert for alert in run.alerts}
        return [
            Verdict(
                alert=bool(run.alert_flags[index]),
                score=float(run.scores[index]),
                fired=tuple(
                    int(s) for s in by_index[index].matched
                ) if index in by_index else (),
            )
            for index in range(len(payloads))
        ]


class ClusterPath(DetectorPath):
    """Cluster-mode sharding (:class:`~repro.ids.parallel.ClusterModeEngine`).

    Only applicable to detectors that expose a ``signature_set`` — the
    shards are per-signature, so there must be signatures to shard.
    """

    def __init__(self, workers: int = 4) -> None:
        self.workers = workers
        self.name = f"cluster-w{workers}"

    def supports(self, detector) -> bool:
        """Sharding needs a :class:`SignatureSet` to split."""
        return isinstance(
            getattr(detector, "signature_set", None), SignatureSet
        )

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """One sharded ``inspect`` per payload."""
        from repro.ids.parallel import ClusterModeEngine

        engine = ClusterModeEngine(
            detector.signature_set, workers=self.workers
        )
        return [
            Verdict.from_detection(engine.inspect(p)) for p in payloads
        ]


class GatewayPath(DetectorPath):
    """A live gateway round-trip: real TCP socket, real wire framing.

    The gateway is started on an ephemeral port, the payloads are
    replayed over pipelined connections exactly like ``repro loadgen``,
    and each data-plane response line decodes to one verdict.  The
    queue bound is sized to the payload count and the policy is
    ``block``, so nothing sheds — a missing or error response is a
    conformance failure, not load shedding.
    """

    name = "gateway"

    def __init__(
        self,
        *,
        connections: int = 2,
        window: int = 32,
        workers: int = 4,
    ) -> None:
        self.connections = connections
        self.window = window
        self.workers = workers

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """Replay *payloads* against a live gateway and decode."""
        from repro.serve.gateway import DetectionGateway, GatewayConfig
        from repro.serve.loadgen import replay
        from repro.serve.store import SignatureStore

        async def _roundtrip() -> list[dict | None]:
            gateway = DetectionGateway(
                SignatureStore(detector),
                GatewayConfig(
                    queue_bound=max(64, len(payloads)),
                    policy="block",
                    workers=self.workers,
                ),
            )
            host, port = await gateway.start()
            try:
                responses, _latencies, _duration = await replay(
                    host, port, payloads,
                    connections=self.connections, window=self.window,
                )
            finally:
                await gateway.stop()
            return responses

        responses = asyncio.run(_roundtrip())
        verdicts: list[Verdict] = []
        for index, response in enumerate(responses):
            if response is None or response.get("shed") or (
                "error" in response
            ):
                raise ConformanceError(
                    f"gateway gave no verdict for payload {index}: "
                    f"{response!r}"
                )
            verdicts.append(Verdict(
                alert=bool(response.get("alert")),
                score=float(response.get("score", 0.0)),
                fired=tuple(int(s) for s in response.get("matched", [])),
            ))
        return verdicts


class SurfacesLegacyParityPath(DetectorPath):
    """The surface-aware scorer pinned to the legacy selection.

    :func:`repro.surfaces.score_request` with ``surfaces=query,form``
    promises verdicts identical to flattening the request and calling
    ``detector.inspect`` — the parity contract that lets every caller
    migrate to the surface API without revalidating its alerts.  This
    path scores each payload as a query-only request through the
    surface scorer; any divergence from ``serial`` is a broken
    flattening, not a detector change.
    """

    name = "surfaces-legacy-parity"

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """One legacy-selection ``score_request`` per payload."""
        from repro.surfaces import LEGACY_SURFACES, score_request

        return [
            Verdict.from_detection(
                score_request(
                    detector.inspect, HttpRequest(query=p), LEGACY_SURFACES
                )
            )
            for p in payloads
        ]


class GatewayFramedPath(DetectorPath):
    """A live gateway round-trip in framed full-request mode (wire v2).

    Each payload travels as a whole :class:`HttpRequest` inside a
    ``REPRO-FRAME/2`` frame with the legacy surface selection, so the
    response must carry the exact legacy verdict *plus* surface
    attribution.  This proves the framed data plane end to end: header
    parsing, frame-body decode, surface extraction in the worker, and
    the extended response encoding.
    """

    name = "gateway-framed"

    def __init__(
        self,
        *,
        connections: int = 2,
        window: int = 32,
        workers: int = 4,
    ) -> None:
        self.connections = connections
        self.window = window
        self.workers = workers

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """Replay framed requests against a live gateway and decode."""
        from repro.serve.gateway import DetectionGateway, GatewayConfig
        from repro.serve.loadgen import replay_framed
        from repro.serve.store import SignatureStore
        from repro.surfaces import LEGACY_SURFACES

        requests = [HttpRequest(query=p) for p in payloads]

        async def _roundtrip() -> list[dict | None]:
            gateway = DetectionGateway(
                SignatureStore(detector),
                GatewayConfig(
                    queue_bound=max(64, len(payloads)),
                    policy="block",
                    workers=self.workers,
                ),
            )
            host, port = await gateway.start()
            try:
                responses, _latencies, _duration = await replay_framed(
                    host, port, requests,
                    surfaces=LEGACY_SURFACES,
                    connections=self.connections, window=self.window,
                )
            finally:
                await gateway.stop()
            return responses

        responses = asyncio.run(_roundtrip())
        verdicts: list[Verdict] = []
        for index, response in enumerate(responses):
            if response is None or response.get("shed") or (
                "error" in response
            ):
                raise ConformanceError(
                    f"framed gateway gave no verdict for payload "
                    f"{index}: {response!r}"
                )
            if "surfaces" not in response or "verdicts" not in response:
                raise ConformanceError(
                    f"framed response {index} lacks surface attribution: "
                    f"{response!r}"
                )
            verdicts.append(Verdict(
                alert=bool(response.get("alert")),
                score=float(response.get("score", 0.0)),
                fired=tuple(int(s) for s in response.get("matched", [])),
            ))
        return verdicts


class ShardedGatewayPath(DetectorPath):
    """A live multi-process fleet round-trip on one shared TCP port.

    The payloads travel through everything the fleet adds on top of the
    single-process gateway — ``SO_REUSEPORT`` (or pre-fork) connection
    balancing, per-shard admission queues, per-shard store generations —
    so any divergence from the serial baseline is a real data-plane
    defect, not a simulation artifact.  Queue bounds are sized to the
    payload count under ``block`` policy: nothing sheds, a missing
    verdict is a conformance failure.

    With ``midstream_reload`` the oracle's replay races a full
    two-phase fleet reload: the *same* signature set is re-deployed as
    generation 2 while payloads are in flight, so every verdict must
    still match the serial baseline bit-for-bit no matter which
    generation answered it — the atomicity claim, tested from the
    outside.
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        connections: int = 4,
        window: int = 32,
        workers: int = 2,
        midstream_reload: bool = False,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.connections = connections
        self.window = window
        self.workers = workers
        self.midstream_reload = midstream_reload
        suffix = "-reload" if midstream_reload else ""
        self.name = f"fleet-s{shards}{suffix}"

    def supports(self, detector) -> bool:
        """Needs fork (detector inheritance); the reload variant also
        needs a serializable :class:`SignatureSet` to re-deploy."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        if not self.midstream_reload:
            return True
        return isinstance(
            getattr(detector, "signature_set", None), SignatureSet
        )

    def run(self, detector, payloads: list[str]) -> list[Verdict]:
        """Replay *payloads* against a live fleet and decode."""
        from repro.serve.loadgen import replay
        from repro.serve.supervisor import FleetConfig, FleetSupervisor

        async def _roundtrip() -> list[dict | None]:
            supervisor = FleetSupervisor(detector, FleetConfig(
                shards=self.shards,
                queue_bound=max(64, len(payloads)),
                policy="block",
                workers=self.workers,
            ))
            host, port = await supervisor.start()
            try:
                replay_task = asyncio.get_running_loop().create_task(
                    replay(
                        host, port, payloads,
                        connections=self.connections, window=self.window,
                    )
                )
                if self.midstream_reload:
                    from repro.core.serialize import signature_set_to_json

                    # Let some payloads land on generation 1, then flip
                    # the whole fleet mid-stream.
                    await asyncio.sleep(0.05)
                    await supervisor.reload_json(
                        signature_set_to_json(detector.signature_set),
                        source="conformance-midstream",
                    )
                responses, _latencies, _duration = await replay_task
            finally:
                await supervisor.stop()
            return responses

        responses = asyncio.run(_roundtrip())
        verdicts: list[Verdict] = []
        for index, response in enumerate(responses):
            if response is None or response.get("shed") or (
                "error" in response
            ):
                raise ConformanceError(
                    f"fleet gave no verdict for payload {index}: "
                    f"{response!r}"
                )
            verdicts.append(Verdict(
                alert=bool(response.get("alert")),
                score=float(response.get("score", 0.0)),
                fired=tuple(int(s) for s in response.get("matched", [])),
            ))
        return verdicts


def default_paths(
    *,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    gateway: bool = True,
    fleet: bool = True,
    fleet_shards: int = 2,
    cluster_workers: int = 4,
) -> list[DetectorPath]:
    """Every registered path, serial (the baseline) first."""
    paths: list[DetectorPath] = [
        SerialPath(), LegacySerialPath(), EngineRunPath(),
        SurfacesLegacyParityPath(),
    ]
    paths.extend(BatchPath(workers=count) for count in worker_counts)
    paths.append(ClusterPath(workers=cluster_workers))
    if gateway:
        paths.append(GatewayPath())
        paths.append(GatewayFramedPath())
    if fleet:
        paths.append(ShardedGatewayPath(shards=fleet_shards))
        paths.append(
            ShardedGatewayPath(shards=fleet_shards, midstream_reload=True)
        )
    return paths
