"""Verdict normal form and divergence records.

The paper's operational claim (Section V) is that a deployed signature
set gives one stable verdict per payload.  The repo now computes that
verdict along several code paths — serial ``evaluate``, batched
``run_batch``, the cluster-mode shards, the serving gateway — and the
conformance layer reduces every path's answer to one comparable shape:
``(alert, score, fired)``.  Two paths *conform* when their verdict
sequences are element-wise equal (scores within a tolerance); every
disagreement becomes a structured :class:`Divergence` rather than a
bare assertion failure, so a report can name the payload, the paths,
and the field that split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ConformanceError",
    "ConformanceReport",
    "Divergence",
    "Verdict",
    "diff_verdicts",
]

#: Payload text beyond this many characters is elided in reports.
MAX_PAYLOAD_CHARS = 120

#: Default absolute tolerance for score comparison.  Scores are pure
#: float64 arithmetic over identical inputs, so paths in one process
#: agree bit-for-bit; the tolerance absorbs only serialization
#: round-trips (JSON floats over the gateway wire).
SCORE_TOLERANCE = 1e-9


class ConformanceError(RuntimeError):
    """A detector path failed outright (not a per-payload divergence)."""


@dataclass(frozen=True)
class Verdict:
    """One path's verdict on one payload.

    Attributes:
        alert: did the detector alert.
        score: the decision score; ``None`` when the path does not expose
            one (the serial engine only records scores for alerts).
        fired: signature numbers / rule sids that fired, in path order.
    """

    alert: bool
    score: float | None
    fired: tuple[int, ...]

    @classmethod
    def from_detection(cls, detection) -> "Verdict":
        """Normalize a :class:`~repro.ids.rules.Detection`."""
        return cls(
            alert=bool(detection.alert),
            score=float(detection.score),
            fired=tuple(int(s) for s in detection.matched_sids),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (golden-corpus record body)."""
        return {
            "alert": self.alert,
            "score": self.score,
            "fired": list(self.fired),
        }


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two detector paths.

    Attributes:
        baseline: name of the reference path.
        path: name of the disagreeing path.
        index: payload position, or ``None`` for path-level failures
            (a path that crashed or returned the wrong count).
        field: what disagreed — ``alert``, ``score``, ``fired``,
            ``count``, ``error``, or ``feature:<label>`` for extraction
            cells.
        expected: the baseline's value.
        observed: the path's value.
        payload: elided payload text, for human triage.
    """

    baseline: str
    path: str
    index: int | None
    field: str
    expected: Any
    observed: Any
    payload: str = ""

    def describe(self) -> str:
        """One-line rendering for reports."""
        where = f"payload[{self.index}]" if self.index is not None else "path"
        text = f" {self.payload!r}" if self.payload else ""
        return (
            f"{self.path} vs {self.baseline} @ {where}.{self.field}: "
            f"expected {self.expected!r}, got {self.observed!r}{text}"
        )


@dataclass
class ConformanceReport:
    """Outcome of one oracle run.

    Attributes:
        detector: detector name the paths shared.
        n_payloads: payloads driven through every path.
        paths: path names executed, baseline first.
        divergences: every observed disagreement.
        path_wall_s: wall-clock seconds per path.
    """

    detector: str
    n_payloads: int
    paths: list[str] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)
    path_wall_s: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every path agreed on every payload."""
        return not self.divergences

    def divergences_for(self, path: str) -> list[Divergence]:
        """The divergences attributed to one path."""
        return [d for d in self.divergences if d.path == path]

    def summary(self) -> str:
        """One-line verdict for logs and CI output."""
        verdict = "CONFORMANT" if self.ok else "DIVERGENT"
        return (
            f"{verdict}: detector={self.detector} payloads={self.n_payloads} "
            f"paths={len(self.paths)} divergences={len(self.divergences)}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for manifests and tooling."""
        return {
            "detector": self.detector,
            "n_payloads": self.n_payloads,
            "paths": list(self.paths),
            "ok": self.ok,
            "divergences": [
                {
                    "baseline": d.baseline,
                    "path": d.path,
                    "index": d.index,
                    "field": d.field,
                    "expected": d.expected,
                    "observed": d.observed,
                    "payload": d.payload,
                }
                for d in self.divergences
            ],
            "path_wall_s": {
                name: round(seconds, 6)
                for name, seconds in self.path_wall_s.items()
            },
        }


def _elide(payload: str) -> str:
    if len(payload) <= MAX_PAYLOAD_CHARS:
        return payload
    return payload[:MAX_PAYLOAD_CHARS] + "…"


def diff_verdicts(
    baseline_name: str,
    baseline: list[Verdict],
    path_name: str,
    verdicts: list[Verdict],
    payloads: list[str],
    *,
    score_tolerance: float = SCORE_TOLERANCE,
) -> list[Divergence]:
    """Element-wise diff of one path's verdicts against the baseline.

    A length mismatch yields a single ``count`` divergence (per-payload
    comparison would misattribute every later index).  Scores are only
    compared when both paths expose one.
    """
    if len(baseline) != len(verdicts):
        return [Divergence(
            baseline=baseline_name,
            path=path_name,
            index=None,
            field="count",
            expected=len(baseline),
            observed=len(verdicts),
        )]
    out: list[Divergence] = []
    for index, (truth, seen) in enumerate(zip(baseline, verdicts)):
        elided = _elide(payloads[index]) if index < len(payloads) else ""
        if truth.alert != seen.alert:
            out.append(Divergence(
                baseline=baseline_name, path=path_name, index=index,
                field="alert", expected=truth.alert, observed=seen.alert,
                payload=elided,
            ))
        if truth.fired != seen.fired:
            out.append(Divergence(
                baseline=baseline_name, path=path_name, index=index,
                field="fired", expected=list(truth.fired),
                observed=list(seen.fired), payload=elided,
            ))
        if (
            truth.score is not None
            and seen.score is not None
            and abs(truth.score - seen.score) > score_tolerance
        ):
            out.append(Divergence(
                baseline=baseline_name, path=path_name, index=index,
                field="score", expected=truth.score, observed=seen.score,
                payload=elided,
            ))
    return out
