"""The differential oracle: every path, one payload set, one report.

Running the same payloads through every registered detector path and
diffing the verdicts is the repo's end-to-end equivalence check: any
optimization PR that changes a verdict anywhere — a cache that returns a
stale normalization, a chunk boundary that drops a request, a wire
encoding that rounds a score — shows up as a :class:`Divergence` naming
the payload, the paths, and the field.

The oracle is observable: the whole run is a ``conform.run`` span with
one ``conform.path`` child per path, and the registry counters
``repro_conformance_payloads_total`` / ``repro_conformance_divergences_total``
make divergence rates scrapeable wherever the oracle runs.
"""

from __future__ import annotations

import time

from repro.conformance.paths import (
    DEFAULT_WORKER_COUNTS,
    DetectorPath,
    default_paths,
)
from repro.conformance.verdict import (
    SCORE_TOLERANCE,
    ConformanceError,
    ConformanceReport,
    Divergence,
    Verdict,
    diff_verdicts,
)
from repro.obs import trace as obs_trace
from repro.obs.registry import get_registry

__all__ = [
    "Oracle",
    "extraction_divergences",
    "format_report",
    "serial_verdicts",
]


def serial_verdicts(detector, payloads: list[str]) -> list[Verdict]:
    """Baseline verdicts: one ``detector.inspect`` call per payload."""
    return [Verdict.from_detection(detector.inspect(p)) for p in payloads]


def extraction_divergences(
    payloads: list[str],
    *,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    extractor=None,
    chunk_size: int | None = None,
) -> list[Divergence]:
    """Feature-extraction parity: parallel matrices vs the serial one.

    Phase-2 extraction is the other fan-out in the repo (training-time
    rather than detection-time), so the oracle checks it alongside the
    verdict paths: ``extract_many`` at each worker count must produce a
    cell-identical matrix.  Mismatched cells become ``feature:<label>``
    divergences against the ``extract-w1`` baseline.
    """
    from repro.features.extractor import FeatureExtractor
    from repro.parallel.extract import ParallelFeatureExtractor

    extractor = extractor if extractor is not None else FeatureExtractor()
    baseline = extractor.extract_many(payloads)
    out: list[Divergence] = []
    for workers in worker_counts:
        if workers == 1:
            continue
        parallel = ParallelFeatureExtractor(
            extractor, workers=workers, chunk_size=chunk_size
        )
        matrix = parallel.extract_many(payloads)
        name = f"extract-w{workers}"
        if matrix.counts.shape != baseline.counts.shape:
            out.append(Divergence(
                baseline="extract-w1", path=name, index=None,
                field="count",
                expected=list(baseline.counts.shape),
                observed=list(matrix.counts.shape),
            ))
            continue
        mismatched = (matrix.counts != baseline.counts).nonzero()
        for row, column in zip(*mismatched):
            out.append(Divergence(
                baseline="extract-w1", path=name, index=int(row),
                field=f"feature:{baseline.catalog[int(column)].label}",
                expected=int(baseline.counts[row, column]),
                observed=int(matrix.counts[row, column]),
                payload=payloads[int(row)][:120],
            ))
    return out


class Oracle:
    """Drives one detector through every applicable path and diffs.

    Args:
        detector: any engine-mountable detector.
        paths: the paths to execute; the first entry is the baseline all
            others are diffed against.  Defaults to
            :func:`~repro.conformance.paths.default_paths`.
        score_tolerance: absolute score tolerance for verdict diffs.
        check_extraction: also run the feature-extraction parity check
            (detector-independent, but part of the "one stable answer"
            contract because signature training consumes the matrices).
        extraction_workers: worker counts for the extraction check.
    """

    def __init__(
        self,
        detector,
        *,
        paths: list[DetectorPath] | None = None,
        score_tolerance: float = SCORE_TOLERANCE,
        check_extraction: bool = True,
        extraction_workers: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    ) -> None:
        self.detector = detector
        self.paths = paths if paths is not None else default_paths()
        if not self.paths:
            raise ValueError("need at least one path (the baseline)")
        self.score_tolerance = score_tolerance
        self.check_extraction = check_extraction
        self.extraction_workers = extraction_workers

    def run(self, payloads: list[str]) -> ConformanceReport:
        """Execute every applicable path over *payloads* and diff.

        A path that raises is reported as a single path-level ``error``
        divergence; the remaining paths still run, so one broken path
        never hides another's disagreement.
        """
        payloads = list(payloads)
        registry = get_registry()
        registry.counter(
            "repro_conformance_payloads_total",
            "Payloads driven through the conformance oracle.",
        ).inc(len(payloads))
        divergence_counter = registry.counter(
            "repro_conformance_divergences_total",
            "Verdict divergences found by the conformance oracle.",
        )
        report = ConformanceReport(
            detector=self.detector.name, n_payloads=len(payloads)
        )
        with obs_trace.span(
            "conform.run",
            detector=self.detector.name,
            payloads=len(payloads),
        ) as run_span:
            baseline_path = self.paths[0]
            baseline = self._run_path(baseline_path, payloads, report)
            if baseline is None:
                raise ConformanceError(
                    f"baseline path {baseline_path.name!r} failed; "
                    "nothing to compare against"
                )
            for path in self.paths[1:]:
                if not path.supports(self.detector):
                    continue
                verdicts = self._run_path(path, payloads, report)
                if verdicts is None:
                    continue
                report.divergences.extend(diff_verdicts(
                    baseline_path.name, baseline, path.name,
                    verdicts, payloads,
                    score_tolerance=self.score_tolerance,
                ))
            if self.check_extraction:
                with obs_trace.span(
                    "conform.path", path="extraction"
                ):
                    started = time.perf_counter()
                    report.divergences.extend(extraction_divergences(
                        payloads, worker_counts=self.extraction_workers,
                    ))
                    report.path_wall_s["extraction"] = (
                        time.perf_counter() - started
                    )
                    report.paths.append("extraction")
            run_span.set(divergences=len(report.divergences))
        if report.divergences:
            divergence_counter.inc(len(report.divergences))
        return report

    def _run_path(
        self,
        path: DetectorPath,
        payloads: list[str],
        report: ConformanceReport,
    ) -> list[Verdict] | None:
        """Execute one path; record wall time; errors become divergences."""
        report.paths.append(path.name)
        with obs_trace.span("conform.path", path=path.name):
            started = time.perf_counter()
            try:
                verdicts = path.run(self.detector, payloads)
            except ConformanceError as exc:
                report.divergences.append(Divergence(
                    baseline=self.paths[0].name, path=path.name,
                    index=None, field="error",
                    expected="a verdict per payload", observed=str(exc),
                ))
                return None
            finally:
                report.path_wall_s[path.name] = (
                    time.perf_counter() - started
                )
        return verdicts


def format_report(report: ConformanceReport, *, max_lines: int = 20) -> str:
    """Human-readable multi-line rendering of one oracle run."""
    lines = [report.summary()]
    for name in report.paths:
        wall = report.path_wall_s.get(name, 0.0)
        bad = len(report.divergences_for(name))
        status = "ok" if not bad else f"{bad} divergence(s)"
        lines.append(f"  {name:<12} {wall:8.3f}s  {status}")
    shown = report.divergences[:max_lines]
    for divergence in shown:
        lines.append(f"  ! {divergence.describe()}")
    hidden = len(report.divergences) - len(shown)
    if hidden > 0:
        lines.append(f"  ... and {hidden} more divergence(s)")
    return "\n".join(lines)
