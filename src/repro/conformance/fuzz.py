"""Seeded grammar-based fuzzer for the conformance oracle.

The corpus a conformance run drives through every path has to earn its
keep: uniform random bytes would exercise nothing the detectors care
about.  This fuzzer composes the corpus from the repo's own generators —
the SQLi grammar (:mod:`repro.corpus.grammar`), the evasion mutators
(:mod:`repro.corpus.mutators`), the benign traffic generator — plus a
hand-built adversarial section aimed at the seams between paths:

- **Unicode evasions**: payloads rewritten through the *inverse* of the
  normalizer's fold table (fullwidth forms, smart quotes, ideographic
  spaces), plus unmapped non-ASCII the normalizer must drop.
- **Encoding tricks**: single/double percent-encoding, truncated and
  invalid ``%`` escapes, mixed-case hex digits.
- **Wire-ambiguous cases**: the ``+``-versus-space and literal-``%``
  payloads that historically differed between argv, stdin, and socket
  delivery.
- **Framing edges**: the empty payload, bare ``param=``, repeated
  parameters, and a long tail payload.

Everything is deterministic from the seed, and every payload is
wire-safe (no raw CR/LF — the line protocol frames on newlines, and a
real query string never contains one), so the same corpus drives the
offline paths and the gateway byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.benign import BenignTrafficGenerator
from repro.corpus.grammar import CorpusGenerator
from repro.corpus.mutators import MUTATORS
from repro.normalize.unicode_map import FOLD_TABLE

__all__ = ["BUDGETS", "FuzzBudget", "generate_corpus"]


@dataclass(frozen=True)
class FuzzBudget:
    """Corpus sizing for one conformance run.

    Attributes:
        name: budget label (``small`` / ``medium`` / ``large``).
        attacks: grammar-rendered SQLi samples.
        benign: benign requests mixed in.
        mutated: extra adversarial variants derived per mutator.
    """

    name: str
    attacks: int
    benign: int
    mutated: int

    @property
    def approximate_total(self) -> int:
        """Rough corpus size (before dedup)."""
        return (
            self.attacks
            + self.benign
            + self.mutated * len(MUTATORS)
            + len(_ADVERSARIAL_BASES) * 2
            + len(_STATIC_EDGES)
        )


#: Named budgets: ``small`` fits a CI step, ``large`` a nightly soak.
BUDGETS: dict[str, FuzzBudget] = {
    "small": FuzzBudget(name="small", attacks=96, benign=64, mutated=4),
    "medium": FuzzBudget(name="medium", attacks=512, benign=256, mutated=12),
    "large": FuzzBudget(name="large", attacks=2048, benign=1024, mutated=32),
}

#: Attack shapes the adversarial sections derive variants from.
_ADVERSARIAL_BASES = (
    "id=1' union select 1,2,database()-- -",
    "cat=2 and 1=1",
    "q=x' or 'a'='a",
    "item=5; drop table users--",
    "page=1 union select username,password from users",
)

#: Fixed edge cases every budget includes verbatim.
_STATIC_EDGES = (
    "",                                  # empty line = empty payload
    "id=",                               # bare parameter
    "id=1&id=2&id=3",                    # repeated parameter
    "q=a+b",                             # '+' as literal-vs-space
    "q=c++ programming",                 # benign '+' text
    "q=50%+off+sale",                    # '%' adjacent to '+'
    "discount=100%",                     # trailing bare '%'
    "q=%zz%",                            # invalid percent escape
    "q=%2527%2520union",                 # double-encoded quote+space
    "q=%27%20or%20%271%27=%271",         # fully percent-encoded attack
    "q=%2B1%2B1",                        # encoded '+' itself
    "note=it's 100% fine & safe",        # benign with '%', '&', quote
    "search=union+square+hotels",        # benign SQL-ish vocabulary
)

#: ASCII → Unicode confusable substitutions: the inverse image of the
#: normalizer's fold table, so every substitution here is one the
#: normalizer claims to undo.
_UNFOLD: dict[str, tuple[str, ...]] = {}
for _folded_char, _ascii_char in FOLD_TABLE.items():
    _UNFOLD.setdefault(_ascii_char, ())
    _UNFOLD[_ascii_char] = _UNFOLD[_ascii_char] + (_folded_char,)


def _wire_safe(payload: str) -> str:
    """Replace raw CR/LF with their percent-encoded wire forms.

    The data plane frames payloads on newlines; a query string with a
    raw newline cannot exist on the wire, so the corpus encodes them the
    way a client would have to.
    """
    return payload.replace("\r", "%0d").replace("\n", "%0a")


def _unicode_variant(payload: str, rng: np.random.Generator) -> str:
    """Swap foldable ASCII for confusables; sprinkle droppable junk."""
    out = []
    for ch in payload:
        options = _UNFOLD.get(ch)
        if options and rng.random() < 0.4:
            out.append(options[int(rng.integers(len(options)))])
        else:
            out.append(ch)
    if rng.random() < 0.5:
        # Unmapped non-ASCII the normalizer drops entirely.
        position = int(rng.integers(len(out) + 1))
        out.insert(position, "α​")  # alpha + zero-width space
    return "".join(out)


def generate_corpus(
    *, seed: int = 2012, budget: FuzzBudget | str = "small"
) -> list[str]:
    """The deterministic conformance corpus for one (seed, budget).

    Returns a de-duplicated, wire-safe payload list: grammar attacks,
    benign traffic, per-mutator adversarial variants, unicode-evasion
    variants, and the fixed edge cases, in a stable order.
    """
    if isinstance(budget, str):
        try:
            budget = BUDGETS[budget]
        except KeyError:
            raise ValueError(
                f"unknown budget {budget!r}; "
                f"choose from {sorted(BUDGETS)}"
            ) from None
    rng = np.random.default_rng(seed)
    payloads: list[str] = []

    attacks = CorpusGenerator(seed=seed).generate(budget.attacks)
    payloads.extend(sample.payload for sample in attacks)

    benign = BenignTrafficGenerator(seed=seed + 1).trace(
        budget.benign, name="conform-benign"
    )
    payloads.extend(benign.payloads())

    # Per-mutator adversarial variants of the base attacks: each mutator
    # gets its own derivations so a normalization bug against one trick
    # cannot hide behind another.
    for mutator in MUTATORS:
        for _ in range(budget.mutated):
            base = _ADVERSARIAL_BASES[
                int(rng.integers(len(_ADVERSARIAL_BASES)))
            ]
            payloads.append(mutator(base, rng))

    for base in _ADVERSARIAL_BASES:
        payloads.append(_unicode_variant(base, rng))
        payloads.append(base.upper())

    payloads.extend(_STATIC_EDGES)
    payloads.append("id=" + "A" * 2048 + "'--")

    seen: set[str] = set()
    unique: list[str] = []
    for payload in payloads:
        safe = _wire_safe(payload)
        if safe not in seen:
            seen.add(safe)
            unique.append(safe)
    return unique
