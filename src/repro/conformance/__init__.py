"""Differential conformance: one oracle for every detector path.

The subsystem behind ``repro conform``: a :class:`~.oracle.Oracle` that
drives a payload set through every registered verdict path and diffs
the answers, a seeded grammar fuzzer that builds adversarial corpora,
and golden-corpus snapshots that pin verdicts across PRs.  See
DESIGN.md §13 for the architecture.
"""

from repro.conformance.fuzz import BUDGETS, FuzzBudget, generate_corpus
from repro.conformance.golden import (
    GoldenCorpus,
    GoldenError,
    diff_golden,
    read_golden,
    write_golden,
)
from repro.conformance.harness import (
    default_training_config,
    train_default_detector,
)
from repro.conformance.oracle import (
    Oracle,
    extraction_divergences,
    format_report,
    serial_verdicts,
)
from repro.conformance.paths import (
    BatchPath,
    ClusterPath,
    DetectorPath,
    EngineRunPath,
    GatewayFramedPath,
    GatewayPath,
    LegacySerialPath,
    SerialPath,
    ShardedGatewayPath,
    SurfacesLegacyParityPath,
    default_paths,
)
from repro.conformance.verdict import (
    ConformanceError,
    ConformanceReport,
    Divergence,
    Verdict,
    diff_verdicts,
)

__all__ = [
    "BUDGETS",
    "BatchPath",
    "ClusterPath",
    "ConformanceError",
    "ConformanceReport",
    "DetectorPath",
    "Divergence",
    "EngineRunPath",
    "FuzzBudget",
    "GatewayFramedPath",
    "GatewayPath",
    "GoldenCorpus",
    "GoldenError",
    "LegacySerialPath",
    "Oracle",
    "SerialPath",
    "ShardedGatewayPath",
    "SurfacesLegacyParityPath",
    "Verdict",
    "default_paths",
    "default_training_config",
    "diff_golden",
    "diff_verdicts",
    "extraction_divergences",
    "format_report",
    "generate_corpus",
    "read_golden",
    "serial_verdicts",
    "train_default_detector",
    "write_golden",
]
