"""Shared harness glue: the self-trained detector conformance runs use.

A conformance run needs a detector.  Operators pass a signature file;
CI and the test suite instead train a small deterministic pipeline —
*the same* configuration the test fixtures use, so a golden corpus
recorded by ``repro conform record`` is reproducible by anything that
holds the seed.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineConfig

__all__ = ["default_training_config", "train_default_detector"]


def default_training_config(seed: int = 2012) -> PipelineConfig:
    """The canonical small training configuration.

    One definition shared by the conformance CLI, the CI conform step,
    and the test suite's session fixtures: 900 crawled samples, 2500
    benign negatives, clustering capped at 700 prototypes.  Any drift
    here invalidates recorded golden corpora, so change it deliberately.
    """
    return PipelineConfig(
        seed=seed,
        n_attack_samples=900,
        n_benign_train=2500,
        max_cluster_rows=700,
    )


def train_default_detector(seed: int = 2012):
    """Train the canonical small pipeline and mount it as a detector."""
    from repro.core.pipeline import PSigenePipeline
    from repro.ids.engine import PSigeneDetector

    result = PSigenePipeline(default_training_config(seed)).run()
    return PSigeneDetector(result.signature_set)
