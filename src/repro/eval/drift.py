"""Concept-drift study: the motivation of Section I, quantified.

"As new attacks are created and as new kinds of benign traffic are
observed, the signatures need to be updated.  The current approach to
this process is manual."  This module simulates the attack landscape
shifting — the family mix of fresh attacks drifts away from the training
mix — and measures (a) how detection decays under drift and (b) how much
of it the automatic incremental update wins back, which is pSigene's
central operational claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incremental import incremental_update
from repro.core.pipeline import PipelineResult, PSigenePipeline
from repro.corpus.families import FAMILIES, Family
from repro.corpus.grammar import CorpusGenerator


def drifted_families(
    *, shift: float = 3.0, seed: int = 0
) -> tuple[Family, ...]:
    """A family mix drifted away from the training distribution.

    The weights are exponentially re-tilted with a random direction per
    family: ``w' = w · shift^u`` with ``u ~ U(−1, 1)``.  ``shift=1`` is no
    drift; larger values skew the attack landscape harder toward
    previously-rare techniques.
    """
    if shift < 1.0:
        raise ValueError("shift must be >= 1.0")
    rng = np.random.default_rng(seed)
    tilted = []
    for family in FAMILIES:
        factor = shift ** float(rng.uniform(-1.0, 1.0))
        tilted.append(Family(
            name=family.name,
            weight=family.weight * factor,
            templates=family.templates,
            description=family.description,
        ))
    return tuple(tilted)


@dataclass
class DriftRound:
    """One drift epoch's measurements.

    Attributes:
        epoch: 0-based drift round.
        shift: drift magnitude applied this round.
        tpr_before_update: detection on the drifted traffic with the
            incumbent signatures.
        tpr_after_update: detection on *held-out* drifted traffic after
            folding the observed half into training.
    """

    epoch: int
    shift: float
    tpr_before_update: float
    tpr_after_update: float


def drift_study(
    pipeline: PSigenePipeline,
    result: PipelineResult,
    *,
    epochs: int = 3,
    shift: float = 4.0,
    samples_per_epoch: int = 400,
    seed: int = 99,
) -> list[DriftRound]:
    """Run the drift-and-recover loop.

    Each epoch draws fresh attacks from a drifted family mix, measures
    the incumbent signature set on them, folds half of the observed
    attacks back in (Θ-only warm update), and re-measures on the unseen
    half.

    Returns one :class:`DriftRound` per epoch; signatures accumulate
    updates across epochs.
    """
    rounds: list[DriftRound] = []
    signature_set = result.signature_set
    accumulated: list[str] = []
    for epoch in range(epochs):
        families = drifted_families(shift=shift, seed=seed + epoch)
        generator = CorpusGenerator(
            seed=seed + 1000 + epoch, families=families
        )
        fresh = [s.payload for s in generator.generate(samples_per_epoch)]
        observed, held_out = (
            fresh[: samples_per_epoch // 2],
            fresh[samples_per_epoch // 2:],
        )
        before = float(np.mean([
            signature_set.matches(p) for p in held_out
        ]))
        accumulated.extend(observed)
        update = incremental_update(
            pipeline, result, accumulated, strategy="warm"
        )
        signature_set = update.signature_set
        after = float(np.mean([
            signature_set.matches(p) for p in held_out
        ]))
        rounds.append(DriftRound(
            epoch=epoch,
            shift=shift,
            tpr_before_update=before,
            tpr_after_update=after,
        ))
    return rounds
