"""Hand-rolled SVG chart primitives for the figure reproductions.

No plotting library is available offline, so Figures 2–4 render through
this small SVG layer: line charts with axes/ticks/legend (ROC curves,
cumulative TPR) and dendrogram trees (the margins of Figure 2).  Output is
self-contained SVG text suitable for embedding in the HTML report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default series colors (colorblind-safe-ish cycle).
PALETTE = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
    "#bbbbbb", "#000000", "#997700", "#cc3311", "#009988",
)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class Series:
    """One polyline on a chart.

    Attributes:
        label: legend entry.
        x: x coordinates (data space).
        y: y coordinates (data space).
        color: stroke color; assigned from the palette when empty.
    """

    label: str
    x: list[float]
    y: list[float]
    color: str = ""


@dataclass
class LineChart:
    """A minimal line chart with axes, ticks, and a legend.

    Attributes:
        title: chart title.
        x_label / y_label: axis captions.
        series: the polylines.
        width / height: canvas size in pixels.
        x_max / y_max: data-space axis limits (auto when ``None``).
    """

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    width: int = 560
    height: int = 380
    x_max: float | None = None
    y_max: float | None = None

    _MARGIN = 58

    def add(self, label: str, x, y) -> None:
        """Append one series (coordinates coerced to floats)."""
        self.series.append(Series(
            label=label,
            x=[float(v) for v in x],
            y=[float(v) for v in y],
        ))

    def _limits(self) -> tuple[float, float]:
        x_max = self.x_max
        y_max = self.y_max
        if x_max is None:
            x_max = max(
                (max(s.x) for s in self.series if s.x), default=1.0
            ) or 1.0
        if y_max is None:
            y_max = max(
                (max(s.y) for s in self.series if s.y), default=1.0
            ) or 1.0
        return float(x_max), float(y_max)

    def render(self) -> str:
        """Produce the SVG document text."""
        margin = self._MARGIN
        plot_w = self.width - 2 * margin
        plot_h = self.height - 2 * margin
        x_max, y_max = self._limits()

        def sx(value: float) -> float:
            return margin + (value / x_max) * plot_w if x_max else margin

        def sy(value: float) -> float:
            return (
                self.height - margin - (value / y_max) * plot_h
                if y_max else self.height - margin
            )

        parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14">{_escape(self.title)}</text>',
        ]
        # Axes.
        parts.append(
            f'<line x1="{margin}" y1="{self.height - margin}" '
            f'x2="{self.width - margin}" y2="{self.height - margin}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
            f'y2="{self.height - margin}" stroke="black"/>'
        )
        # Ticks (5 per axis).
        for tick in range(6):
            xv = x_max * tick / 5
            yv = y_max * tick / 5
            parts.append(
                f'<text x="{sx(xv):.1f}" y="{self.height - margin + 16}" '
                f'text-anchor="middle">{xv:.3g}</text>'
            )
            parts.append(
                f'<text x="{margin - 6}" y="{sy(yv) + 4:.1f}" '
                f'text-anchor="end">{yv:.3g}</text>'
            )
            parts.append(
                f'<line x1="{sx(xv):.1f}" y1="{self.height - margin}" '
                f'x2="{sx(xv):.1f}" y2="{self.height - margin + 4}" '
                f'stroke="black"/>'
            )
        # Axis labels.
        parts.append(
            f'<text x="{self.width / 2}" y="{self.height - 12}" '
            f'text-anchor="middle">{_escape(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="16" y="{self.height / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {self.height / 2})">'
            f'{_escape(self.y_label)}</text>'
        )
        # Series.
        for index, series in enumerate(self.series):
            color = series.color or PALETTE[index % len(PALETTE)]
            points = " ".join(
                f"{sx(min(x, x_max)):.1f},{sy(min(y, y_max)):.1f}"
                for x, y in zip(series.x, series.y)
            )
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{color}" stroke-width="1.6"/>'
            )
            legend_y = margin + 14 * index
            parts.append(
                f'<line x1="{self.width - margin - 110}" y1="{legend_y}" '
                f'x2="{self.width - margin - 92}" y2="{legend_y}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{self.width - margin - 88}" '
                f'y="{legend_y + 4}">{_escape(series.label)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)


def render_dendrogram_svg(
    linkage: np.ndarray,
    n_leaves: int,
    *,
    width: int = 420,
    height: int = 300,
    title: str = "dendrogram",
) -> str:
    """Render a linkage matrix as a classic right-angle dendrogram."""
    from repro.cluster.dendrogram import Dendrogram

    dendrogram = Dendrogram(np.asarray(linkage), n_leaves)
    order = dendrogram.leaf_order()
    leaf_x = {leaf: position for position, leaf in enumerate(order)}
    max_height = float(linkage[:, 2].max()) or 1.0
    margin = 28
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin

    def sx(position: float) -> float:
        if n_leaves == 1:
            return margin
        return margin + position / (n_leaves - 1) * plot_w

    def sy(merge_height: float) -> float:
        return height - margin - (merge_height / max_height) * plot_h

    # Track each cluster's (x, height) as merges happen.
    position_of: dict[int, float] = {
        leaf: float(leaf_x[leaf]) for leaf in range(n_leaves)
    }
    height_of: dict[int, float] = {leaf: 0.0 for leaf in range(n_leaves)}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="10">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="16" text-anchor="middle">'
        f'{_escape(title)}</text>',
    ]
    for step in range(n_leaves - 1):
        left = int(linkage[step, 0])
        right = int(linkage[step, 1])
        merge_height = float(linkage[step, 2])
        x_left, x_right = position_of[left], position_of[right]
        y_left, y_right = height_of[left], height_of[right]
        y_top = sy(merge_height)
        parts.append(
            f'<path d="M {sx(x_left):.1f} {sy(y_left):.1f} '
            f'L {sx(x_left):.1f} {y_top:.1f} '
            f'L {sx(x_right):.1f} {y_top:.1f} '
            f'L {sx(x_right):.1f} {sy(y_right):.1f}" '
            f'fill="none" stroke="#333" stroke-width="1"/>'
        )
        merged = n_leaves + step
        position_of[merged] = (x_left + x_right) / 2
        height_of[merged] = merge_height
    parts.append("</svg>")
    return "\n".join(parts)
