"""Evaluation harness: one driver per paper table and figure."""

from repro.eval.datasets import TestDatasets, build_test_datasets
from repro.eval.experiments import (
    EvaluationContext,
    experiment2_incremental,
    experiment3_perdisci,
    experiment4_performance,
    figure2_heatmap,
    figure3_roc,
    figure4_cumulative_tpr,
    table1_vulnerability_coverage,
    table2_feature_sources,
    table3_signature_features,
    table4_ruleset_comparison,
    table5_accuracy,
    table6_cluster_details,
)
from repro.eval.drift import DriftRound, drift_study, drifted_families
from repro.eval.evasion import (
    BASE_ATTACKS,
    TECHNIQUES,
    EvasionCell,
    evasion_matrix,
    evasion_payloads,
)
from repro.eval.report import (
    format_table,
    html,
    percent,
    render_report,
    tables,
    write_report,
)
from repro.eval.svg import LineChart, render_dendrogram_svg
from repro.eval.tuning import SignatureTuning, tune_thresholds

__all__ = [
    "TestDatasets",
    "build_test_datasets",
    "EvaluationContext",
    "table1_vulnerability_coverage",
    "table2_feature_sources",
    "table3_signature_features",
    "table4_ruleset_comparison",
    "table5_accuracy",
    "table6_cluster_details",
    "figure2_heatmap",
    "figure3_roc",
    "figure4_cumulative_tpr",
    "experiment2_incremental",
    "experiment3_perdisci",
    "experiment4_performance",
    "format_table",
    "percent",
    "tune_thresholds",
    "SignatureTuning",
    "render_report",
    "write_report",
    "html",
    "tables",
    "LineChart",
    "render_dendrogram_svg",
    "evasion_matrix",
    "evasion_payloads",
    "EvasionCell",
    "TECHNIQUES",
    "BASE_ATTACKS",
    "drift_study",
    "drifted_families",
    "DriftRound",
]
