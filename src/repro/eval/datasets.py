"""Test-dataset construction (Section III-B).

Three test sets: the SQLmap trace and the Arachni set (Arachni + Vega,
reported together as the paper does "since ... they provide similar
insights") for TPR, and the benign week trace for FPR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.benign import BenignTrafficGenerator
from repro.corpus.webapp import VulnerableWebApp
from repro.http.traffic import Trace
from repro.scanners import ArachniSimulator, SqlmapSimulator, VegaSimulator


@dataclass
class TestDatasets:
    """The paper's three test traces.

    Attributes:
        sqlmap: SQLmap scan trace (paper: >7,200 attacks).
        arachni: Arachni+Vega trace (paper: 8,578 attacks).
        benign: benign week trace (paper: 1.4M requests).
    """

    sqlmap: Trace
    arachni: Trace
    benign: Trace


def build_test_datasets(
    *,
    seed: int = 77,
    n_benign: int = 50_000,
    n_vulnerabilities: int = 136,
) -> TestDatasets:
    """Generate all three test traces.

    The benign-trace size is configurable because the paper's 1.4M requests
    only matter through the FPR denominator; 50k (default) keeps test and
    bench runtimes sane while resolving FPRs down to 0.002%.
    """
    app = VulnerableWebApp(seed=seed, n_vulnerabilities=n_vulnerabilities)
    sqlmap = SqlmapSimulator(app, seed=seed + 1).scan()
    arachni = ArachniSimulator(app, seed=seed + 2).scan()
    vega = VegaSimulator(app, seed=seed + 3).scan()
    arachni_set = arachni.merged(vega, name="arachni-set")
    benign = BenignTrafficGenerator(seed=seed + 4).trace(
        n_benign, name="benign-week"
    )
    return TestDatasets(sqlmap=sqlmap, arachni=arachni_set, benign=benign)
