"""Experiment drivers: one function per paper table/figure.

Each function regenerates the corresponding artifact from scratch given an
:class:`EvaluationContext`; the benchmarks in ``benchmarks/`` call these
and print the rows next to the paper's numbers (recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.incremental import incremental_update
from repro.core.pipeline import PipelineConfig, PipelineResult, PSigenePipeline
from repro.core.signature import SignatureSet
from repro.eval.datasets import TestDatasets, build_test_datasets
from repro.features.definitions import SOURCES, build_catalog
from repro.http.traffic import Trace
from repro.ids.engine import Detector, PSigeneDetector, SignatureEngine
from repro.ids.rulesets import (
    build_bro_ruleset,
    build_merged_snort_et_ruleset,
    build_modsec_ruleset,
)
from repro.learn.metrics import Confusion, RocCurve, confusion_from_alerts, roc_curve
from repro.perdisci import PerdisciSystem


@dataclass
class EvaluationContext:
    """A trained pipeline plus the three test datasets.

    Attributes:
        pipeline: the pipeline object (kept for incremental updates).
        result: the completed training run.
        datasets: SQLmap / Arachni / benign test traces.
    """

    pipeline: PSigenePipeline
    result: PipelineResult
    datasets: TestDatasets
    _score_cache: dict[tuple[int, str], np.ndarray] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def build(
        cls,
        *,
        seed: int = 2012,
        n_attack_samples: int = 3000,
        n_benign_train: int = 8000,
        n_benign_test: int = 50_000,
        max_cluster_rows: int = 2500,
        n_vulnerabilities: int = 136,
        workers: int = 1,
        config: PipelineConfig | None = None,
    ) -> "EvaluationContext":
        """Train pSigene and generate the test sets."""
        if config is None:
            config = PipelineConfig(
                seed=seed,
                n_attack_samples=n_attack_samples,
                n_benign_train=n_benign_train,
                max_cluster_rows=max_cluster_rows,
                workers=workers,
            )
        pipeline = PSigenePipeline(config)
        result = pipeline.run()
        datasets = build_test_datasets(
            seed=seed + 100,
            n_benign=n_benign_test,
            n_vulnerabilities=n_vulnerabilities,
        )
        return cls(pipeline=pipeline, result=result, datasets=datasets)

    # -- shared scoring --------------------------------------------------------

    def signature_scores(
        self, signature_set: SignatureSet, trace: Trace
    ) -> np.ndarray:
        """(n_requests, n_signatures) probability matrix, cached per trace."""
        key = (id(signature_set), trace.name)
        cached = self._score_cache.get(key)
        if cached is not None:
            return cached
        scores = np.vstack([
            signature_set.probabilities(payload)
            for payload in trace.payloads()
        ]) if len(trace) else np.zeros((0, len(signature_set)))
        self._score_cache[key] = scores
        return scores

    def psigene_sets(self) -> tuple[SignatureSet, SignatureSet]:
        """The 9- and 7-signature sets of Experiment 1.

        The paper's 7-set is biclusters 1–7 (the largest); the 9-set adds
        the two smaller ones (8 and 11 there).
        """
        full = self.result.signature_set
        indices = sorted(s.bicluster_index for s in full)
        nine = full.subset(indices[:9])
        seven = full.subset(indices[:7])
        return nine, seven


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1_vulnerability_coverage(context: EvaluationContext) -> dict:
    """Table I + the Section II-A coverage heuristic."""
    from repro.corpus.vulndb import TABLE1_RECORDS, coverage, july_2012_cohort

    records = july_2012_cohort()
    covered = coverage(records, context.result.samples)
    return {
        "table1_rows": [
            {"vulnerability": r.product, "cve": r.cve_id}
            for r in TABLE1_RECORDS
        ],
        "cohort_size": len(records),
        "covered": sum(covered.values()),
        "coverage": covered,
    }


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

def table2_feature_sources() -> list[dict]:
    """Feature-source inventory (initial catalog, per Table II)."""
    catalog = build_catalog()
    counts = catalog.source_counts()
    examples = {
        source: [d.pattern for d in catalog.by_source(source)[:3]]
        for source in SOURCES
    }
    return [
        {
            "source": source,
            "features": counts[source],
            "examples": examples[source],
        }
        for source in SOURCES
    ]


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------

def table3_signature_features(
    context: EvaluationContext, bicluster_index: int = 6
) -> dict:
    """Feature list + Θ of one signature (the paper prints signature 6)."""
    for signature in context.result.signature_set:
        if signature.bicluster_index == bicluster_index:
            return {
                "bicluster": bicluster_index,
                "features": [
                    {"number": d.index, "pattern": d.pattern, "label": d.label}
                    for d in signature.features
                ],
                "theta": [float(v) for v in signature.model.theta],
                "describe": signature.describe(),
            }
    raise KeyError(f"no signature for bicluster {bicluster_index}")


# ---------------------------------------------------------------------------
# Table IV
# ---------------------------------------------------------------------------

def table4_ruleset_comparison() -> list[dict]:
    """Ruleset statistics: counts, enabled %, regex usage %."""
    from repro.ids.rulesets.emerging_threats import generate_et_rules
    from repro.ids.rules import DeterministicRuleSet
    from repro.ids.rulesets.snort import SNORT_RULES

    bro = build_bro_ruleset()
    snort = DeterministicRuleSet("snort", list(SNORT_RULES))
    et = DeterministicRuleSet("emerging-threats", generate_et_rules())
    modsec = build_modsec_ruleset()
    rows = []
    for ruleset in (bro, snort, et, modsec):
        rows.append({
            "rules": ruleset.name,
            "sqli_rules": ruleset.total_rules,
            "enabled_pct": round(100 * ruleset.enabled_fraction, 1),
            "regex_pct": round(100 * ruleset.regex_fraction, 1),
            "avg_pattern_len": round(ruleset.average_pattern_length(), 1),
        })
    return rows


# ---------------------------------------------------------------------------
# Table V (Experiment 1)
# ---------------------------------------------------------------------------

def _evaluate_detector(
    detector: Detector, datasets: TestDatasets
) -> dict:
    engine = SignatureEngine(detector)
    sqlmap_run = engine.run(datasets.sqlmap)
    arachni_run = engine.run(datasets.arachni)
    benign_run = engine.run(datasets.benign)
    sqlmap_conf = confusion_from_alerts(
        sqlmap_run.alert_flags, benign_run.alert_flags
    )
    arachni_conf = confusion_from_alerts(
        arachni_run.alert_flags, benign_run.alert_flags
    )
    return {
        "rules": detector.name,
        "tpr_sqlmap": sqlmap_conf.tpr,
        "tpr_arachni": arachni_conf.tpr,
        "fpr": sqlmap_conf.fpr,
        "false_alarms": int(benign_run.alert_flags.sum()),
    }


def table5_accuracy(context: EvaluationContext) -> list[dict]:
    """Experiment 1: accuracy of all five systems, Table V's rows."""
    nine, seven = context.psigene_sets()
    detectors: list[Detector] = [
        build_modsec_ruleset(),
        PSigeneDetector(nine, name=f"psigene({len(nine)} signatures)"),
        PSigeneDetector(seven, name=f"psigene({len(seven)} signatures)"),
        build_merged_snort_et_ruleset(),
        build_bro_ruleset(),
    ]
    rows = [
        _evaluate_detector(detector, context.datasets)
        for detector in detectors
    ]
    rows.sort(key=lambda r: -r["tpr_sqlmap"])
    return rows


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------

def figure3_roc(context: EvaluationContext) -> dict[int, RocCurve]:
    """Per-signature ROC curves over the combined attack test data."""
    full = context.result.signature_set
    attacks = context.datasets.sqlmap.merged(
        context.datasets.arachni, name="attacks-all"
    )
    attack_scores = context.signature_scores(full, attacks)
    benign_scores = context.signature_scores(full, context.datasets.benign)
    curves: dict[int, RocCurve] = {}
    for column, signature in enumerate(full):
        curves[signature.bicluster_index] = roc_curve(
            attack_scores[:, column], benign_scores[:, column]
        )
    return curves


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------

def figure4_cumulative_tpr(context: EvaluationContext) -> list[dict]:
    """Cumulative TPR as signatures are added best-first."""
    full = context.result.signature_set
    attacks = context.datasets.sqlmap.merged(
        context.datasets.arachni, name="attacks-all"
    )
    scores = context.signature_scores(full, attacks)
    thresholds = np.array([s.threshold for s in full])
    fired = scores >= thresholds[None, :]
    individual = fired.mean(axis=0)
    order = np.argsort(-individual)
    covered = np.zeros(scores.shape[0], dtype=bool)
    rows: list[dict] = []
    for position, column in enumerate(order, start=1):
        before = covered.mean()
        covered |= fired[:, column]
        after = covered.mean()
        rows.append({
            "rank": position,
            "signature": full[int(column)].bicluster_index,
            "individual_tpr": float(individual[column]),
            "marginal": float(after - before),
            "cumulative_tpr": float(after),
        })
    return rows


# ---------------------------------------------------------------------------
# Table VI
# ---------------------------------------------------------------------------

def table6_cluster_details(context: EvaluationContext) -> list[dict]:
    """Per-bicluster sample/feature counts (Table VI)."""
    return context.result.table6()


# ---------------------------------------------------------------------------
# Experiment 2: incremental learning
# ---------------------------------------------------------------------------

def experiment2_incremental(
    context: EvaluationContext, fractions: tuple[float, ...] = (0.2, 0.4)
) -> list[dict]:
    """Retrain Θ with 20%/40% of the SQLmap set folded into training."""
    rows: list[dict] = []
    base_nine, _ = context.psigene_sets()
    baseline = _evaluate_detector(
        PSigeneDetector(base_nine, name="baseline"), context.datasets
    )
    rows.append({
        "added_fraction": 0.0,
        "tpr_sqlmap": baseline["tpr_sqlmap"],
        "fpr": baseline["fpr"],
    })
    for fraction in fractions:
        fresh = context.datasets.sqlmap.subsample(
            fraction, seed=int(fraction * 1000)
        )
        update = incremental_update(
            context.pipeline, context.result, fresh.payloads()
        )
        indices = sorted(
            s.bicluster_index for s in update.signature_set
        )[:9]
        nine = update.signature_set.subset(indices)
        row = _evaluate_detector(
            PSigeneDetector(nine, name=f"psigene+{fraction:.0%}"),
            context.datasets,
        )
        rows.append({
            "added_fraction": fraction,
            "tpr_sqlmap": row["tpr_sqlmap"],
            "fpr": row["fpr"],
        })
    return rows


# ---------------------------------------------------------------------------
# Experiment 3: Perdisci comparison
# ---------------------------------------------------------------------------

def experiment3_perdisci(
    context: EvaluationContext, *, max_training: int = 700
) -> dict:
    """Train the Perdisci baseline on the same corpus; measure both ways."""
    payloads = [s.payload for s in context.result.samples]
    system = PerdisciSystem(max_training=max_training, seed=1)
    report = system.fit(payloads)

    attacks = context.datasets.sqlmap.merged(
        context.datasets.arachni, name="attacks-all"
    )
    attack_alerts = [system.inspect(p).alert for p in attacks.payloads()]
    benign_alerts = [
        system.inspect(p).alert for p in context.datasets.benign.payloads()
    ]
    confusion = confusion_from_alerts(attack_alerts, benign_alerts)

    rng = np.random.default_rng(1)
    if len(payloads) > max_training:
        picked = rng.choice(len(payloads), max_training, replace=False)
        training_payloads = [payloads[i] for i in sorted(picked)]
    else:
        training_payloads = payloads
    train_tpr = float(np.mean(
        [system.inspect(p).alert for p in training_payloads]
    ))
    return {
        "fine_grained_clusters": report.fine_grained.k,
        "clusters_after_filter": report.clusters_after_filter,
        "final_signatures": len(report.signatures),
        "tpr": confusion.tpr,
        "fpr": confusion.fpr,
        "train_on_train_tpr": train_tpr,
    }


# ---------------------------------------------------------------------------
# Experiment 4: performance
# ---------------------------------------------------------------------------

def experiment4_performance(
    context: EvaluationContext, *, sample_requests: int = 1500
) -> list[dict]:
    """Per-request processing time of pSigene vs ModSec vs Bro.

    Measured on the reference per-signature loop: the paper's Table VI
    profiles a straightforward regex-per-feature evaluator, and the
    fused engine (DESIGN.md §14) is fast enough to invert the paper's
    ordering. Its speedup is reported separately in BENCH_matching.json.
    """
    from repro.match import fused_disabled

    nine, _ = context.psigene_sets()
    subset = Trace(
        name="sqlmap-perf",
        requests=list(context.datasets.sqlmap.requests[:sample_requests]),
    )
    rows: list[dict] = []
    for detector in (
        PSigeneDetector(nine, name="psigene"),
        build_modsec_ruleset(),
        build_bro_ruleset(),
    ):
        with fused_disabled():
            run = SignatureEngine(detector).run(subset, measure_time=True)
        low, mean, high = run.timing_summary_us()
        rows.append({
            "detector": detector.name,
            "min_us": round(low, 1),
            "avg_us": round(mean, 1),
            "max_us": round(high, 1),
        })
    base = rows[0]["avg_us"]
    for row in rows:
        row["slowdown_vs_this"] = (
            round(base / row["avg_us"], 1) if row["avg_us"] else float("inf")
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------

def figure2_heatmap(context: EvaluationContext):
    """Heatmap data + text rendering over the clustered subsample."""
    from repro.cluster.heatmap import build_heatmap, render_text

    config = context.pipeline.config
    matrix = context.result.matrix
    rng = np.random.default_rng(config.seed + 2)
    n = matrix.n_samples
    if n > config.max_cluster_rows:
        subset = np.sort(
            rng.choice(n, config.max_cluster_rows, replace=False)
        )
    else:
        subset = np.arange(n)
    heatmap = build_heatmap(
        matrix.counts[subset], context.result.biclustering
    )
    return heatmap, render_text(heatmap)
