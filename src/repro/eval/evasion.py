"""Evasion-technique detection matrix.

Section I motivates pSigene with the brittleness of simple signatures
against attack *variations*; Section IV's discussion centers on how far
test attacks may drift from training.  This module systematizes that:
a battery of canonical SQLi payloads, each wrapped in one well-defined
evasion technique, evaluated against every detector — producing a
technique × detector detection matrix that localizes exactly which
transformations each approach survives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.http.url import quote

#: Canonical un-evaded payload values the techniques wrap.
BASE_ATTACKS: tuple[str, ...] = (
    "1' union select 1,2,database()-- -",
    "5' or '1'='1",
    "9' and sleep(5)-- -",
    "3'; drop table users-- -",
    "7' and extractvalue(1,concat(0x7e,version()))-- -",
)


def _case_mix(value: str) -> str:
    return "".join(
        ch.upper() if i % 2 else ch.lower() for i, ch in enumerate(value)
    )


def _space2comment(value: str) -> str:
    return value.replace(" ", "/**/")


def _double_encode(value: str) -> str:
    return quote(quote(value))


def _unicode_escape(value: str) -> str:
    return value.replace("'", "%u0027").replace(" ", "%u0020")


def _fullwidth(value: str) -> str:
    return "".join(
        chr(ord(ch) - 0x21 + 0xFF01)
        if ch.isalpha() and ord(ch) < 127 else ch
        for ch in value
    )


def _hex_keywords(value: str) -> str:
    return value.replace("database()", "unhex(hex(database()))")


def _tab_whitespace(value: str) -> str:
    return value.replace(" ", "%09")


def _plus_spaces(value: str) -> str:
    return quote(value).replace("%20", "+")


#: The evasion techniques: (name, transform).  ``identity`` is the
#: control row.
TECHNIQUES: tuple[tuple[str, object], ...] = (
    ("identity", lambda v: v),
    ("url-encoded", quote),
    ("plus-spaces", _plus_spaces),
    ("case-mixing", _case_mix),
    ("inline-comments", _space2comment),
    ("double-encoding", _double_encode),
    ("unicode-%u", _unicode_escape),
    ("fullwidth-unicode", _fullwidth),
    ("hex-wrapping", _hex_keywords),
    ("tab-whitespace", _tab_whitespace),
)


@dataclass
class EvasionCell:
    """One matrix cell: a detector's recall against one technique.

    Attributes:
        technique: evasion name.
        detector: detector name.
        detected: payloads caught.
        total: payloads tried.
    """

    technique: str
    detector: str
    detected: int
    total: int

    @property
    def recall(self) -> float:
        """Fraction of the technique's payloads the detector caught."""
        return self.detected / self.total if self.total else 0.0


def evasion_payloads() -> dict[str, list[str]]:
    """The full battery: technique name → evaded query strings."""
    battery: dict[str, list[str]] = {}
    for name, transform in TECHNIQUES:
        battery[name] = [
            f"id={transform(value)}" for value in BASE_ATTACKS
        ]
    return battery


def evasion_matrix(detectors: list) -> list[EvasionCell]:
    """Evaluate every detector against every technique.

    Args:
        detectors: objects exposing ``name`` and
            ``inspect(payload) -> Detection``.
    """
    cells: list[EvasionCell] = []
    for technique, payloads in evasion_payloads().items():
        for detector in detectors:
            detected = sum(
                1 for payload in payloads
                if detector.inspect(payload).alert
            )
            cells.append(EvasionCell(
                technique=technique,
                detector=detector.name,
                detected=detected,
                total=len(payloads),
            ))
    return cells
