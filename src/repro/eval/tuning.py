"""Operating-point tuning from per-signature ROC curves.

Section III-D: "From a ROC curve like this and with an idea of a desired
TPR and FPR, a security administrator can visually, and approximately,
decide which signatures to enable or disable."  This module automates that
workflow: given per-signature score distributions over labelled traffic,
pick per-signature probability thresholds meeting an FPR budget, and
decide which signatures are worth enabling at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.signature import GeneralizedSignature, SignatureSet
from repro.http.traffic import Trace


@dataclass
class SignatureTuning:
    """Tuning outcome for one signature.

    Attributes:
        bicluster_index: which signature.
        threshold: chosen probability threshold.
        tpr: detection rate at the threshold (on the tuning traffic).
        fpr: false positive rate at the threshold.
        enabled: whether the signature is worth running at all — false
            when even its best threshold contributes no detections within
            the FPR budget.
    """

    bicluster_index: int
    threshold: float
    tpr: float
    fpr: float
    enabled: bool


def _scores(signature_set: SignatureSet, trace: Trace) -> np.ndarray:
    if not len(trace):
        return np.zeros((0, len(signature_set)))
    return np.vstack([
        signature_set.probabilities(payload) for payload in trace.payloads()
    ])


def tune_thresholds(
    signature_set: SignatureSet,
    attacks: Trace,
    benign: Trace,
    *,
    max_fpr_per_signature: float = 0.0005,
    min_tpr: float = 0.01,
) -> tuple[SignatureSet, list[SignatureTuning]]:
    """Choose per-signature thresholds under a per-signature FPR budget.

    For each signature the lowest threshold whose FPR on the benign tuning
    trace stays within budget is selected (lower threshold = more recall).
    Signatures that cannot reach ``min_tpr`` within the budget are
    disabled (dropped from the returned set), reproducing the
    enable/disable decision the paper leaves to the administrator.

    Returns:
        the tuned (possibly smaller) signature set and the per-signature
        tuning records, in original order.
    """
    if not 0.0 <= max_fpr_per_signature <= 1.0:
        raise ValueError("max_fpr_per_signature must be in [0, 1]")
    attack_scores = _scores(signature_set, attacks)
    benign_scores = _scores(signature_set, benign)

    tunings: list[SignatureTuning] = []
    kept: list[GeneralizedSignature] = []
    for column, signature in enumerate(signature_set):
        attack_column = attack_scores[:, column]
        benign_column = benign_scores[:, column]
        candidates = np.unique(np.concatenate([
            np.linspace(0.05, 0.999, 60), attack_column,
        ]))
        best: SignatureTuning | None = None
        for threshold in np.sort(candidates):
            fpr = float((benign_column >= threshold).mean()) if (
                benign_column.size
            ) else 0.0
            if fpr > max_fpr_per_signature:
                continue
            tpr = float((attack_column >= threshold).mean()) if (
                attack_column.size
            ) else 0.0
            best = SignatureTuning(
                bicluster_index=signature.bicluster_index,
                threshold=float(threshold),
                tpr=tpr,
                fpr=fpr,
                enabled=tpr >= min_tpr,
            )
            break  # lowest compliant threshold maximizes recall
        if best is None:
            best = SignatureTuning(
                bicluster_index=signature.bicluster_index,
                threshold=1.0,
                tpr=0.0,
                fpr=0.0,
                enabled=False,
            )
        tunings.append(best)
        if best.enabled:
            kept.append(GeneralizedSignature(
                bicluster_index=signature.bicluster_index,
                features=signature.features,
                model=signature.model,
                threshold=best.threshold,
                bicluster_feature_count=signature.bicluster_feature_count,
                training_samples=signature.training_samples,
            ))
    tuned = SignatureSet(kept, normalizer=signature_set.normalizer)
    return tuned, tunings
