"""Online/offline parity: does the gateway answer exactly like the
offline engine?

The serving path adds queueing, snapshotting, and wire framing around
the very same ``detector.inspect`` call the offline
:class:`~repro.ids.engine.SignatureEngine` makes, so for a fixed trace
the alert flags, matched sids, and scores must agree bit-for-bit.  This
module is the referee: it renders offline ground truth and diffs gateway
responses against it (used by the round-trip tests and by
``repro loadgen --check-parity``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ids.engine import Detector
from repro.ids.rules import Detection

__all__ = ["ParityReport", "offline_detections", "parity_of_responses"]


def offline_detections(
    detector: Detector, payloads: list[str]
) -> list[Detection]:
    """Ground truth: inspect every payload directly, in order."""
    return [detector.inspect(payload) for payload in payloads]


@dataclass
class ParityReport:
    """Outcome of one online-vs-offline diff.

    Attributes:
        total: responses compared (sheds and missing responses excluded).
        shed: responses refused by admission control (not comparable).
        missing: payloads with no response at all.
        mismatches: indices where verdict, sids, or score disagreed.
    """

    total: int = 0
    shed: int = 0
    missing: int = 0
    mismatches: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every compared response matched ground truth."""
        return not self.mismatches

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "PARITY" if self.ok else "MISMATCH"
        return (
            f"{verdict}: {self.total} compared, {self.shed} shed, "
            f"{self.missing} missing, {len(self.mismatches)} mismatched"
        )


def parity_of_responses(
    offline: list[Detection],
    responses: list[dict | None],
    *,
    score_tolerance: float = 1e-9,
) -> ParityReport:
    """Diff gateway response objects against offline detections.

    ``responses[i]`` is the decoded data-plane object for payload ``i``
    (``None`` when the client never got an answer).  Shed responses are
    counted but not compared — admission control refused them, so there
    is no verdict to check.
    """
    if len(offline) != len(responses):
        raise ValueError(
            f"offline/online length mismatch: "
            f"{len(offline)} vs {len(responses)}"
        )
    report = ParityReport()
    for index, (truth, response) in enumerate(zip(offline, responses)):
        if response is None:
            report.missing += 1
            continue
        if response.get("shed"):
            report.shed += 1
            continue
        report.total += 1
        same = (
            bool(response.get("alert")) == bool(truth.alert)
            and [int(s) for s in response.get("matched", [])]
            == [int(s) for s in truth.matched_sids]
            and abs(float(response.get("score", 0.0)) - float(truth.score))
            <= score_tolerance
        )
        if not same:
            report.mismatches.append(index)
    return report
