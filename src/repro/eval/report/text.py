"""Plain-text table rendering for experiment output.

Every bench prints its table through this module so the regenerated rows
visually line up with the paper's tables.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule, GitHub-markdown-free."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[column]) for row in cells)
        for column in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cells[0][column].ljust(widths[column])
        for column in range(len(headers))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(
            "  ".join(
                row[column].ljust(widths[column])
                for column in range(len(headers))
            )
        )
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as the paper's percent style: 90.52."""
    return f"{100.0 * value:.{digits}f}"
