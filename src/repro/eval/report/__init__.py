"""Evaluation reporting — one package, two renderings.

Historically ``repro.eval.report`` (the HTML report) and
``repro.eval.reporting`` (plain-text tables) sat side by side, one
character apart; this package merges them behind two entry points:

- :func:`html` — the self-contained HTML evaluation report
  (:mod:`repro.eval.report.html`).
- :func:`tables` — fixed-width text tables for terminal output
  (:mod:`repro.eval.report.text`).

The historical names (``render_report``, ``write_report``,
``format_table``, ``percent``) are re-exported unchanged, and the old
``repro.eval.reporting`` module remains importable as a deprecated shim.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.report.html import render_report, write_report
from repro.eval.report.text import format_table, percent

__all__ = [
    "format_table",
    "html",
    "percent",
    "render_report",
    "tables",
    "write_report",
]


def html(context, *, title: str | None = None) -> str:
    """The full evaluation as a self-contained HTML document.

    Thin named entry point over
    :func:`repro.eval.report.html.render_report`.
    """
    return render_report(context, title=title)


def tables(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """One fixed-width text table.

    Thin named entry point over
    :func:`repro.eval.report.text.format_table`.
    """
    return format_table(headers, rows, title=title)
