"""Self-contained HTML evaluation report.

One call renders the whole evaluation — every table and figure the paper
reports — into a single HTML file with embedded SVG charts: the Figure 3
ROC curves, the Figure 4 cumulative-TPR staircase, the Figure 2 heatmap
(as an inline SVG raster with both dendrograms), and the Tables as styled
HTML.  No external assets, viewable offline.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import (
    EvaluationContext,
    figure2_heatmap,
    figure3_roc,
    figure4_cumulative_tpr,
    table4_ruleset_comparison,
    table5_accuracy,
    table6_cluster_details,
)
from repro.eval.svg import LineChart, render_dendrogram_svg

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 68em; }
h1 { border-bottom: 2px solid #444; padding-bottom: 0.2em; }
h2 { margin-top: 2em; color: #234; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #999; padding: 4px 10px; text-align: left; }
th { background: #eef; }
.paper { color: #777; font-style: italic; }
figure { margin: 1em 0; }
"""


def _html_table(headers: list[str], rows: list[list[object]]) -> str:
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _heatmap_svg(context: EvaluationContext, *, cell: int = 2) -> str:
    """Figure 2 as an inline SVG raster with marginal dendrograms."""
    heatmap, _ = figure2_heatmap(context)
    z = np.clip(heatmap.z, -2.5, 2.5) / 2.5
    rows, columns = z.shape
    row_step = max(1, rows // 220)
    z = z[::row_step]
    rows = z.shape[0]
    width, height = columns * cell, rows * cell
    rects = []
    for r in range(rows):
        for c in range(columns):
            value = z[r, c]
            red = int(max(value, 0) * 255)
            green = int(max(-value, 0) * 255)
            if red == green == 0:
                continue  # black background covers it
            rects.append(
                f'<rect x="{c * cell}" y="{r * cell}" width="{cell}" '
                f'height="{cell}" fill="rgb({red},{green},0)"/>'
            )
    raster = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}">'
        f'<rect width="{width}" height="{height}" fill="black"/>'
        + "".join(rects) + "</svg>"
    )
    sample_tree = render_dendrogram_svg(
        context.result.biclustering.sample_dendrogram.linkage,
        context.result.biclustering.sample_dendrogram.n_leaves,
        title="sample dendrogram (prototypes)",
    )
    return raster + "<br/>" + sample_tree


def render_report(context: EvaluationContext, *, title: str | None = None) -> str:
    """Render the full evaluation report; returns HTML text."""
    result = context.result
    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<style>{_STYLE}</style>",
        f"<title>{title or 'pSigene reproduction report'}</title></head>",
        "<body>",
        f"<h1>{title or 'pSigene reproduction — evaluation report'}</h1>",
        "<p>Reproduction of <em>pSigene: Webcrawling to Generalize SQL "
        "Injection Signatures</em> (DSN 2014). Paper values shown in "
        "<span class='paper'>italics</span>.</p>",
    ]

    # Training summary.
    parts.append("<h2>Training summary</h2>")
    parts.append(_html_table(
        ["quantity", "measured", "paper"],
        [
            ["training samples", len(result.samples),
             "<span class='paper'>30,000</span>"],
            ["features after pruning", result.pruning.final_features,
             "<span class='paper'>159 (from 477)</span>"],
            ["biclusters / black holes",
             f"{len(result.biclusters)} / "
             f"{sum(b.is_black_hole for b in result.biclusters)}",
             "<span class='paper'>11 / 2</span>"],
            ["signatures", len(result.signature_set),
             "<span class='paper'>9</span>"],
            ["cophenetic correlation",
             f"{result.biclustering.cophenetic_correlation:.3f}",
             "<span class='paper'>0.92</span>"],
        ],
    ))

    # Table IV.
    parts.append("<h2>Table IV — ruleset comparison</h2>")
    ruleset_rows = table4_ruleset_comparison()
    parts.append(_html_table(
        ["ruleset", "SQLi rules", "enabled %", "regex %"],
        [[r["rules"], r["sqli_rules"], r["enabled_pct"], r["regex_pct"]]
         for r in ruleset_rows],
    ))

    # Table V.
    parts.append("<h2>Table V — accuracy (Experiment 1)</h2>")
    accuracy_rows = table5_accuracy(context)
    parts.append(_html_table(
        ["rules", "TPR % (SQLmap)", "TPR % (Arachni)", "FPR %"],
        [[r["rules"], f"{100 * r['tpr_sqlmap']:.2f}",
          f"{100 * r['tpr_arachni']:.2f}", f"{100 * r['fpr']:.4f}"]
         for r in accuracy_rows],
    ))

    # Table VI.
    parts.append("<h2>Table VI — per-bicluster details</h2>")
    parts.append(_html_table(
        ["bicluster", "samples", "features (biclustering)",
         "features (signature)"],
        [[r["bicluster"], r["samples"], r["features_biclustering"],
          r["features_signature"]] for r in table6_cluster_details(context)],
    ))

    # Figure 2.
    parts.append("<h2>Figure 2 — heatmap and dendrogram</h2>")
    parts.append(f"<figure>{_heatmap_svg(context)}</figure>")

    # Figure 3.
    parts.append("<h2>Figure 3 — per-signature ROC curves</h2>")
    roc_chart = LineChart(
        title="ROC curves for generalized signatures",
        x_label="False Positive Rate", y_label="True Positive Rate",
        x_max=0.05, y_max=1.0,
    )
    for index, curve in sorted(figure3_roc(context).items()):
        keep = curve.fpr <= 0.05
        roc_chart.add(
            f"signature {index}", curve.fpr[keep], curve.tpr[keep]
        )
    parts.append(f"<figure>{roc_chart.render()}</figure>")

    # Figure 4.
    parts.append("<h2>Figure 4 — cumulative TPR</h2>")
    cumulative_rows = figure4_cumulative_tpr(context)
    cumulative_chart = LineChart(
        title="Cumulative TPR as signatures are added (best first)",
        x_label="signatures enabled", y_label="cumulative TPR",
        y_max=1.0,
    )
    cumulative_chart.add(
        "cumulative",
        [r["rank"] for r in cumulative_rows],
        [r["cumulative_tpr"] for r in cumulative_rows],
    )
    cumulative_chart.add(
        "individual",
        [r["rank"] for r in cumulative_rows],
        [r["individual_tpr"] for r in cumulative_rows],
    )
    parts.append(f"<figure>{cumulative_chart.render()}</figure>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(context: EvaluationContext, path: str, **kwargs) -> None:
    """Render and save the report to *path*."""
    with open(path, "w") as handle:
        handle.write(render_report(context, **kwargs))
