"""Deprecated shim: text tables moved to :mod:`repro.eval.report.text`.

Import :func:`~repro.eval.report.text.format_table` and
:func:`~repro.eval.report.text.percent` from ``repro.eval.report``
(or plain ``repro.eval``) instead.
"""

from __future__ import annotations

import warnings

from repro.eval.report.text import format_table, percent

__all__ = ["format_table", "percent"]

warnings.warn(
    "repro.eval.reporting is deprecated; import format_table/percent "
    "from repro.eval.report (the merged reporting package)",
    DeprecationWarning,
    stacklevel=2,
)
