"""SQLi attack families: the generative structure behind the corpus.

The paper's heatmap (Figure 2) exposes eleven biclusters in the crawled
corpus — groups of samples that share feature values.  The corpus generator
reproduces that structure explicitly: eleven families of payload templates,
each family corresponding to a well-documented SQLi technique.  Two families
(``quote-probe`` and ``fuzz-junk``) consist of near-featureless probes and
are the generative analogue of the paper's two "black hole" biclusters.

Templates use ``{placeholder}`` slots filled by
:class:`repro.corpus.grammar.TemplateRenderer`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Family:
    """One attack family.

    Attributes:
        name: stable family identifier.
        weight: sampling weight; relative family sizes follow Table VI's
            spread of bicluster sizes (largest ≈ 8× smallest).
        templates: payload templates for the *value* of an injected
            parameter; rendered and then mutated.
        description: the technique, for documentation and examples.
    """

    name: str
    weight: float
    templates: tuple[str, ...]
    description: str


FAMILIES: tuple[Family, ...] = (
    Family(
        name="union-extract",
        weight=3.0,
        description="UNION-based extraction of schema and data",
        templates=(
            "{base}{q} union select {cols}{cmt}",
            "{base}{q} union all select {cols}{cmt}",
            "-{base}{q} union select {cols_concat}{cmt}",
            "{base}{q} union select {cols} from {table}{cmt}",
            "{base}{q} union select {cols_concat} from information_schema.tables{cmt}",
            "{base}{q} union select group_concat(table_name),{cols} from "
            "information_schema.tables where table_schema=database(){cmt}",
            "{base}{q} union select group_concat(column_name),{cols} from "
            "information_schema.columns where table_name=0x{hextable}{cmt}",
            "{base}{q} union select concat({dbfunc},char(58),{dbfunc}),{cols}{cmt}",
            "{base}{q} union select {cols} from mysql.user{cmt}",
            "{base}{q} union select unhex(hex({dbfunc})),{cols}{cmt}",
            "{base}) union select {cols}{cmt}",
            "{base}{q}) union select {cols} from {table}{cmt}",
        ),
    ),
    Family(
        name="error-based",
        weight=2.0,
        description="error-based extraction via extractvalue/updatexml/floor(rand())",
        templates=(
            "{base}{q} and extractvalue(1,concat(0x7e,{dbfunc})){cmt}",
            "{base}{q} and updatexml(1,concat(0x7e,({subq})),1){cmt}",
            "{base}{q} and (select 1 from (select count(*),concat({dbfunc},"
            "floor(rand(0)*2))x from information_schema.tables group by x)a){cmt}",
            "{base}{q} or row({n},{n})>(select count(*),concat({dbfunc},0x3a,"
            "floor(rand()*2))x from (select 1 union select 2)a group by x){cmt}",
            "{base}{q} and exp(~(select * from (select {dbfunc})a)){cmt}",
            "{base}{q} procedure analyse(extractvalue(1,concat(0x7e,{dbfunc})),1){cmt}",
            "{base}{q} and gtid_subset(concat(0x7e,({subq})),{n}){cmt}",
        ),
    ),
    Family(
        name="boolean-blind",
        weight=2.3,
        description="boolean-based blind probing, character by character",
        templates=(
            "{base}{q} and {n}={n}{cmt}",
            "{base}{q} and {n}={m}{cmt}",
            "{base}{q} and ascii(substring(({subq}),{n},1))>{byte}{cmt}",
            "{base}{q} and length(({subq}))={n}{cmt}",
            "{base}{q} and (select mid({col},{n},1) from {table} limit 1)={q}{ch}{q}{cmt}",
            "{base}{q} and exists(select * from {table}){cmt}",
            "{base}{q} and substring({dbfunc},{n},1)={q}{ch}{q}{cmt}",
            "{base}{q} and {n} between {m} and {n}{cmt}",
            "{base}{q} and ord(mid(({subq}),{n},1))>{byte}{cmt}",
            "{base}{q} rlike (select (case when ({n}={n}) then {base} else 0x28 end)){cmt}",
        ),
    ),
    Family(
        name="time-blind",
        weight=1.6,
        description="time-based blind probing via sleep/benchmark",
        templates=(
            "{base}{q} and sleep({sleep}){cmt}",
            "{base}{q} or sleep({sleep}){cmt}",
            "{base}{q} and if({n}={n},sleep({sleep}),0){cmt}",
            "{base}{q} and (select * from (select(sleep({sleep})))a){cmt}",
            "{base}{q} and benchmark({bigN},md5({n})){cmt}",
            "{base}{q} or if(ascii(substring({dbfunc},{n},1))>{byte},sleep({sleep}),0){cmt}",
            "{base}{q} and elt({n}={n},sleep({sleep})){cmt}",
            "{base}{q} xor sleep({sleep}){cmt}",
        ),
    ),
    Family(
        name="stacked-query",
        weight=1.2,
        description="stacked queries: terminate and append a second statement",
        templates=(
            "{base}{q}; drop table {table}{cmt}",
            "{base}{q}; insert into {table} values ({cols}){cmt}",
            "{base}{q}; update {table} set {col}={n}{cmt}",
            "{base}{q}; delete from {table}{cmt}",
            "{base}{q}; select sleep({sleep}){cmt}",
            "{base}{q}; create table {table}({col} varchar({n})){cmt}",
            "{base}{q}; shutdown{cmt}",
        ),
    ),
    Family(
        name="tautology",
        weight=2.2,
        description="tautologies and authentication bypass",
        templates=(
            "{base}{q} or {n}={n}{cmt}",
            "{base}{q} or {q}1{q}={q}1",
            "{base}{q} or 1=1{cmt}",
            "{base}{q} or {q}a{q}={q}a{cmt}",
            "{base}{q} or true{cmt}",
            "admin{q}{cmt}",
            "admin{q} or {q}1{q}={q}1{cmt}",
            "{base}{q} or {n} like {n}{cmt}",
            "{base}{q} || {q}1{q}={q}1",
            "{base}{q} or not {n}={m}{cmt}",
            "{base}{q} or {col} is not null{cmt}",
        ),
    ),
    Family(
        name="enumeration",
        weight=1.9,
        description="column-count and structure enumeration (ORDER BY / GROUP BY)",
        templates=(
            "{base}{q} order by {n}{cmt}",
            "{base}{q} order by {n}-- -",
            "{base}{q} group by {n}{cmt}",
            "{base}{q} group by {cols} having {n}={n}{cmt}",
            "{base}{q} order by {bign}{cmt}",
            "{base} order by {n}",
            "{base}{q} limit {n},{n}{cmt}",
            "{base}{q} limit {n} offset {n}{cmt}",
        ),
    ),
    Family(
        name="encoded-evasion",
        weight=1.3,
        description="filter evasion via char()/hex/encoding tricks",
        templates=(
            "{base}{q} union select char({charlist}),{cols}{cmt}",
            "{base}{q} and {col}=char({charlist}){cmt}",
            "{base}{q} union select 0x{hexstr},{cols}{cmt}",
            "{base}{q}/**/union/**/select/**/{cols}{cmt}",
            "{base}{q}%09and%09{n}={n}{cmt}",
            "{base}{q} and {col} like 0x{hexstr}{cmt}",
            "{base}{q} uni%6fn sel%65ct {cols}{cmt}",
            "{base}{q} and mid({col},{n},1)=char({byte}){cmt}",
        ),
    ),
    Family(
        name="file-io",
        weight=1.2,
        description="file read/write via load_file and INTO OUTFILE",
        templates=(
            "{base}{q} union select load_file(0x{hexpath}),{cols}{cmt}",
            "{base}{q} union select load_file({q}{path}{q}),{cols}{cmt}",
            "{base}{q} union select {cols} into outfile {q}{path}{q}{cmt}",
            "{base}{q} union select {cols} into dumpfile {q}{path}{q}{cmt}",
            "{base}{q}; select load_file({q}{path}{q}){cmt}",
        ),
    ),
    # The two near-featureless probe families below are the generative
    # analogue of the paper's "black hole" biclusters 9 and 10: their
    # samples match almost no catalog features (>99% zeros per row).
    Family(
        name="quote-probe",
        weight=1.6,
        description="bare syntax-break probes (the scanner's first packet)",
        templates=(
            "{base}{q}",
            "{base}{qq}",
            "{base}%27",
            "{base}%22",
            "{base}{q}{q}",
            "{base}\\{q}",
            "{base}{q})",
            "{base})",
            "{base}{q};",
        ),
    ),
    Family(
        name="fuzz-junk",
        weight=1.4,
        description="low-signal fuzzing junk mixed into public sample dumps",
        templates=(
            "{base}{junk}",
            "{junk}",
            "{base}%00",
            "{base}{q}{junk}",
            "{base}..%2f..%2f{junk}",
            "{base}{{{junk}}}",
        ),
    ),
)

FAMILY_NAMES: tuple[str, ...] = tuple(f.name for f in FAMILIES)

#: Families expected to form "black hole" biclusters.
BLACK_HOLE_FAMILIES: frozenset[str] = frozenset({"quote-probe", "fuzz-junk"})


def family_by_name(name: str) -> Family:
    """Look up a family; raises ``KeyError`` with the known names."""
    for family in FAMILIES:
        if family.name == name:
            return family
    raise KeyError(f"unknown family {name!r}; known: {', '.join(FAMILY_NAMES)}")
