"""Multi-surface request corpus: attacks beyond the query string.

The paper's corpora deliver every attack through the query string or a
urlencoded form body — the two channels its extraction sees.  This
module generates labeled request families for the *other* surfaces of
:mod:`repro.surfaces`: JSON/REST bodies, cookies, headers, multipart
uploads, and second-order (stored→replayed) flows.  Attack values come
from the same SQLi grammar as the paper-facing corpus
(:class:`~repro.corpus.grammar.CorpusGenerator`), so per-surface
detection rates (``BENCH_surfaces.json``) measure the *channel*, not a
different attack distribution.

Every family mixes benign requests of the same shape — a JSON API
corpus where only attacks use JSON bodies would let a detector cheat by
alerting on the content type.
"""

from __future__ import annotations

import json

import numpy as np

from repro.corpus.grammar import CorpusGenerator
from repro.http import HttpRequest, LABEL_ATTACK, LABEL_BENIGN, Trace
from repro.http.url import parse_query

__all__ = ["SURFACE_FAMILIES", "SurfaceCorpusGenerator"]

#: Family names, in generation order (also the ``repro corpus
#: --surface-family`` spellings).
SURFACE_FAMILIES = (
    "json-body",
    "cookie",
    "header",
    "multipart",
    "second-order",
)

_BENIGN_STRINGS = (
    "union square hotels", "select topics in ml", "it's 100% fine",
    "drop-in hours", "O'Brien", "fall 2012 schedule", "cs101",
    "newsletter weekly", "4117 Ord Street", "order by relevance",
    "updates & offers", "c++ programming",
)

_JSON_KEYS = ("user", "comment", "filter", "name", "note", "tag")
_COOKIE_NAMES = ("session", "tracker", "prefs", "last_search")
_HEADER_NAMES = ("user-agent", "referer", "x-forwarded-for", "x-api-key")
_STORED_KEYS = ("comment", "display_name", "signature", "bio")

_BENIGN_AGENTS = (
    "Mozilla/5.0 (X11; Linux x86_64)",
    "Mozilla/4.0 (compatible; MSIE 8.0)",
    "Opera/9.80 (Windows NT 6.1)",
)


def _attack_value(payload: str) -> str:
    """The injected value of one grammar payload.

    Grammar payloads are query strings (``param=value&...``); the
    injection rides in the longest value — peel it out so a JSON field
    or cookie carries a *value*-shaped attack, not a query string.
    """
    pairs = parse_query(payload)
    if not pairs:
        return payload
    return max(pairs, key=lambda pair: len(pair[1]))[1]


class SurfaceCorpusGenerator:
    """Deterministic labeled corpora for the non-paper surfaces.

    Args:
        seed: fixes attack rendering, benign choice, and interleaving.
        attack_fraction: fraction of each family that carries an attack.
    """

    def __init__(
        self, seed: int = 2012, attack_fraction: float = 0.5
    ) -> None:
        if not 0.0 < attack_fraction <= 1.0:
            raise ValueError("attack_fraction must be in (0, 1]")
        self.seed = seed
        self.attack_fraction = attack_fraction
        self._rng = np.random.default_rng(seed)
        self._attack_values: list[str] = []
        self._next_attack = 0

    # -- value supply --------------------------------------------------

    def _attack(self) -> str:
        """Next grammar-rendered attack value (refilled on demand)."""
        if self._next_attack >= len(self._attack_values):
            generation = len(self._attack_values)
            samples = CorpusGenerator(
                seed=self.seed + 17 * (generation + 1)
            ).generate(64)
            self._attack_values.extend(
                _attack_value(sample.payload) for sample in samples
            )
        value = self._attack_values[self._next_attack]
        self._next_attack += 1
        return value

    def _benign(self) -> str:
        return _BENIGN_STRINGS[
            int(self._rng.integers(len(_BENIGN_STRINGS)))
        ]

    def _pick(self, options: tuple[str, ...]) -> str:
        return options[int(self._rng.integers(len(options)))]

    def _is_attack(self) -> bool:
        return bool(self._rng.random() < self.attack_fraction)

    # -- families ------------------------------------------------------

    def json_request(self) -> HttpRequest:
        """A REST call whose JSON body may smuggle an attack.

        Half the attacks hide one level deeper — a JSON document inside
        a JSON string — exercising the extractor's recursive walk.
        """
        attack = self._is_attack()
        value = self._attack() if attack else self._benign()
        key = self._pick(_JSON_KEYS)
        if attack and self._rng.random() < 0.5:
            value = json.dumps({self._pick(_JSON_KEYS): value})
        document = {
            "page": int(self._rng.integers(1, 40)),
            key: value,
            "opts": {"sort": self._pick(("asc", "desc"))},
        }
        return HttpRequest(
            method="POST",
            host="api.victim.test",
            path="/v1/search",
            headers={"content-type": "application/json"},
            body=json.dumps(document),
            label=LABEL_ATTACK if attack else LABEL_BENIGN,
        )

    def cookie_request(self) -> HttpRequest:
        """A page view whose cookie jar may carry an attack."""
        attack = self._is_attack()
        value = self._attack() if attack else self._benign()
        name = self._pick(_COOKIE_NAMES)
        jar = (
            f"sid={int(self._rng.integers(10**8)):08d}; "
            f"{name}={value}"
        )
        return HttpRequest(
            host="www.victim.test",
            path="/account",
            query="view=profile",
            headers={"cookie": jar},
            label=LABEL_ATTACK if attack else LABEL_BENIGN,
        )

    def header_request(self) -> HttpRequest:
        """A request whose tracking/client header may carry an attack."""
        attack = self._is_attack()
        name = self._pick(_HEADER_NAMES)
        value = self._attack() if attack else (
            self._pick(_BENIGN_AGENTS)
            if name == "user-agent"
            else self._benign()
        )
        headers = {"user-agent": self._pick(_BENIGN_AGENTS), name: value}
        return HttpRequest(
            host="www.victim.test",
            path="/landing",
            query="ref=newsletter",
            headers=headers,
            label=LABEL_ATTACK if attack else LABEL_BENIGN,
        )

    def multipart_request(self) -> HttpRequest:
        """A form upload whose field (or filename) may carry an attack."""
        attack = self._is_attack()
        value = self._attack() if attack else self._benign()
        boundary = f"----repro{int(self._rng.integers(10**8)):08d}"
        in_filename = attack and self._rng.random() < 0.3
        filename = value if in_filename else "notes.txt"
        field = self._benign() if in_filename else value
        body = (
            f"--{boundary}\r\n"
            f'Content-Disposition: form-data; name="title"\r\n\r\n'
            f"{self._benign()}\r\n"
            f"--{boundary}\r\n"
            f'Content-Disposition: form-data; name="upload"; '
            f'filename="{filename}"\r\n'
            f"Content-Type: text/plain\r\n\r\n"
            f"{field}\r\n"
            f"--{boundary}--\r\n"
        )
        return HttpRequest(
            method="POST",
            host="files.victim.test",
            path="/upload",
            headers={
                "content-type": f"multipart/form-data; boundary={boundary}"
            },
            body=body,
            label=LABEL_ATTACK if attack else LABEL_BENIGN,
        )

    def second_order_pair(self) -> tuple[HttpRequest, HttpRequest]:
        """A stored→replayed pair: the second-order channel.

        The *store* request submits a value through an ordinary form
        (first-order surfaces see it); the *replay* request carries the
        same value in ``stored`` — nothing in its own query, body, or
        headers is attacker-controlled, so only the SECOND_ORDER surface
        can catch it.
        """
        attack = self._is_attack()
        value = self._attack() if attack else self._benign()
        key = self._pick(_STORED_KEYS)
        label = LABEL_ATTACK if attack else LABEL_BENIGN
        store = HttpRequest(
            method="POST",
            host="forum.victim.test",
            path="/post",
            headers={
                "content-type": "application/x-www-form-urlencoded"
            },
            body=f"{key}={value}",
            label=label,
        )
        replay = HttpRequest(
            host="forum.victim.test",
            path="/thread",
            query="id=" + str(int(self._rng.integers(1, 500))),
            stored=((key, value),),
            label=label,
        )
        return store, replay

    # -- traces --------------------------------------------------------

    def family_trace(self, family: str, count: int) -> Trace:
        """``count`` requests of one family (pairs count as two)."""
        if family not in SURFACE_FAMILIES:
            raise ValueError(
                f"unknown surface family {family!r}; "
                f"valid: {', '.join(SURFACE_FAMILIES)}"
            )
        trace = Trace(name=f"surface-{family}")
        while len(trace) < count:
            if family == "json-body":
                trace.append(self.json_request())
            elif family == "cookie":
                trace.append(self.cookie_request())
            elif family == "header":
                trace.append(self.header_request())
            elif family == "multipart":
                trace.append(self.multipart_request())
            else:
                store, replay = self.second_order_pair()
                trace.append(store)
                if len(trace) < count:
                    trace.append(replay)
        return trace

    def mixed_trace(self, count: int, name: str = "surface-mix") -> Trace:
        """All families interleaved — the full-surface workload."""
        trace = Trace(name=name)
        while len(trace) < count:
            family = SURFACE_FAMILIES[
                int(self._rng.integers(len(SURFACE_FAMILIES)))
            ]
            if family == "second-order":
                store, replay = self.second_order_pair()
                trace.append(store)
                if len(trace) < count:
                    trace.append(replay)
            else:
                trace.append(self.family_trace(family, 1).requests[0])
        return trace
