"""Attack corpus substrate: SQLi grammar, benign traffic, vuln DB, webapp."""

from repro.corpus.benign import BenignTrafficGenerator
from repro.corpus.families import (
    BLACK_HOLE_FAMILIES,
    FAMILIES,
    FAMILY_NAMES,
    Family,
    family_by_name,
)
from repro.corpus.grammar import AttackSample, CorpusGenerator, TemplateRenderer
from repro.corpus.mutators import MUTATORS
from repro.corpus.surfaces import SURFACE_FAMILIES, SurfaceCorpusGenerator
from repro.corpus.vulndb import (
    TABLE1_RECORDS,
    VulnRecord,
    coverage,
    july_2012_cohort,
)
from repro.corpus.webapp import InjectionPoint, Response, VulnerableWebApp

__all__ = [
    "Family",
    "FAMILIES",
    "FAMILY_NAMES",
    "BLACK_HOLE_FAMILIES",
    "family_by_name",
    "AttackSample",
    "CorpusGenerator",
    "TemplateRenderer",
    "MUTATORS",
    "VulnRecord",
    "TABLE1_RECORDS",
    "july_2012_cohort",
    "coverage",
    "VulnerableWebApp",
    "InjectionPoint",
    "Response",
    "BenignTrafficGenerator",
    "SURFACE_FAMILIES",
    "SurfaceCorpusGenerator",
]
