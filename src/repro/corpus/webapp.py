"""A simulated vulnerable web application (WAVSEP stand-in).

Section III-B: the SQLmap test set was generated "against a vulnerable web
application [WAVSEP] running Apache Tomcat and MySQL database ... which
contained 136 vulnerabilities".  This module provides that substrate: an
application with 136 injection points, each typed by injection context and
detection behaviour (error-reflecting, boolean-differential, or
time-differential), plus a response simulator rich enough for the scanner
simulators to drive their detection loops against.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

#: Response behaviours an injection point can exhibit.
BEHAVIOR_ERROR = "error"        # reflects a MySQL error message
BEHAVIOR_BOOLEAN = "boolean"    # page content differs on true/false
BEHAVIOR_TIME = "time"          # response delayed by injected sleep()
BEHAVIORS = (BEHAVIOR_ERROR, BEHAVIOR_BOOLEAN, BEHAVIOR_TIME)

_CONTEXTS = ("numeric", "string", "order-by")


@dataclass(frozen=True)
class InjectionPoint:
    """One vulnerable parameter of the application.

    Attributes:
        path: URL path of the vulnerable page.
        parameter: name of the injectable parameter.
        context: ``numeric`` / ``string`` / ``order-by``.
        behavior: observable side channel (:data:`BEHAVIORS`).
    """

    path: str
    parameter: str
    context: str
    behavior: str


@dataclass(frozen=True)
class Response:
    """Simulated HTTP response.

    Attributes:
        status: HTTP status code.
        body: page body (may contain a reflected SQL error).
        delay: simulated server-side processing time in seconds.
    """

    status: int
    body: str
    delay: float


_MYSQL_ERROR = (
    "You have an error in your SQL syntax; check the manual that corresponds "
    "to your MySQL server version for the right syntax to use near '{frag}' "
    "at line 1"
)

_SLEEP_RE = re.compile(r"(?:sleep|benchmark)\s*\(\s*(\d+)", re.IGNORECASE)
_QUOTE_BREAK_RE = re.compile(r"['\"]|%27|%22")
_TAUTOLOGY_RE = re.compile(
    r"(?:or|and)\s+(\d+)\s*=\s*(\d+)|or\s+'?1'?\s*=\s*'?1", re.IGNORECASE
)
_UNION_RE = re.compile(r"union\s+(?:all\s+)?select", re.IGNORECASE)
_ORDER_RE = re.compile(r"order\s+by\s+(\d+)", re.IGNORECASE)


class VulnerableWebApp:
    """The 136-injection-point application the scanners attack.

    Args:
        seed: seeds the layout of paths/parameters so every run sees the
            same application.
        n_vulnerabilities: number of injection points (paper: 136).
    """

    def __init__(self, seed: int = 7, n_vulnerabilities: int = 136) -> None:
        rng = np.random.default_rng(seed)
        pages = (
            "/case/product", "/case/article", "/case/user", "/case/search",
            "/case/login", "/case/report", "/case/gallery", "/case/forum",
        )
        self.points: list[InjectionPoint] = []
        for index in range(n_vulnerabilities):
            path = f"{pages[index % len(pages)]}{index:03d}.jsp"
            parameter = ("id", "msg", "username", "target", "orderby",
                         "item", "q")[index % 7]
            context = _CONTEXTS[int(rng.integers(len(_CONTEXTS)))]
            behavior = BEHAVIORS[int(rng.integers(len(BEHAVIORS)))]
            self.points.append(
                InjectionPoint(path, parameter, context, behavior)
            )
        self._by_path = {p.path: p for p in self.points}
        #: number of columns the hidden query selects (union probing target)
        self._columns = {p.path: int(rng.integers(2, 9)) for p in self.points}

    def __len__(self) -> int:
        return len(self.points)

    def point_at(self, path: str) -> InjectionPoint | None:
        """The injection point at *path*, if any."""
        return self._by_path.get(path)

    def union_column_count(self, path: str) -> int:
        """Ground-truth column count (what ORDER BY probing converges to)."""
        return self._columns[path]

    def handle(self, path: str, parameter: str, value: str) -> Response:
        """Simulate the application's response to one request.

        The behaviour model follows how MySQL-backed pages actually fail:
        a quote break in an ``error`` page reflects a syntax error; boolean
        pages change content with predicate truth; time pages stall on
        ``sleep``; a correct ``UNION`` column count renders extra content.
        """
        point = self._by_path.get(path)
        if point is None:
            return Response(status=404, body="not found", delay=0.001)
        if parameter != point.parameter:
            return Response(status=200, body="<html>static page</html>",
                            delay=0.002)

        delay = 0.002
        sleep_match = _SLEEP_RE.search(value)
        if sleep_match and point.behavior == BEHAVIOR_TIME:
            delay += min(int(sleep_match.group(1)), 30)

        broke_syntax = bool(_QUOTE_BREAK_RE.search(value))
        order_match = _ORDER_RE.search(value)
        if order_match:
            n = int(order_match.group(1))
            if n > self._columns[path]:
                broke_syntax = True

        if broke_syntax and point.behavior == BEHAVIOR_ERROR:
            fragment = value[:24].replace("\n", " ")
            return Response(status=200,
                            body=_MYSQL_ERROR.format(frag=fragment),
                            delay=delay)
        if broke_syntax:
            return Response(status=500, body="internal error", delay=delay)

        tautology = _TAUTOLOGY_RE.search(value)
        truth = True
        if tautology and tautology.group(1) is not None:
            truth = tautology.group(1) == tautology.group(2)
        body = "<html>row: widget-1</html>"
        if point.behavior == BEHAVIOR_BOOLEAN and tautology and not truth:
            body = "<html>no results</html>"
        if _UNION_RE.search(value):
            commas = value.count(",")
            if commas + 1 == self._columns[path]:
                body = "<html>row: widget-1 row: 1 2 3 extra</html>"
        return Response(status=200, body=body, delay=delay)
