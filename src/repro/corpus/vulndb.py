"""Vulnerability database records and the corpus coverage check.

Table I of the paper lists example SQLi vulnerabilities published in July
2012 (NVD, MySQL-backed web applications) and Section II-A describes a
heuristic coverage check: for each of ~30 high/medium-risk July-2012 SQLi
CVEs, verify the crawled dataset contains attack samples that could be
launched against the vulnerable application.

This module carries those records (the four printed in Table I plus the
rest of the cohort, synthesized to the same schema) and implements the
coverage heuristic: a vulnerability is *covered* when the corpus contains a
sample of a family matching the vulnerability's injection context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.grammar import AttackSample


@dataclass(frozen=True)
class VulnRecord:
    """One published SQLi vulnerability.

    Attributes:
        cve_id: CVE identifier.
        product: vulnerable application/component (Table I column 1).
        context: injection context — ``numeric``, ``string``, or ``order-by``;
            decides which attack families apply.
        risk: ``high`` or ``medium`` (the cohort the paper reviewed).
    """

    cve_id: str
    product: str
    context: str
    risk: str


#: The four examples printed in Table I.
TABLE1_RECORDS: tuple[VulnRecord, ...] = (
    VulnRecord("CVE-2012-3554", "Joomla 1.5.x RSGallery 2.3.20 component",
               "numeric", "high"),
    VulnRecord("CVE-2012-2306", "Drupal 6.x-4.2 Addressbook module",
               "string", "high"),
    VulnRecord("CVE-2012-3395",
               "Moodle 2.0.x mod/feedback/complete.php 2.0.10",
               "string", "medium"),
    VulnRecord("CVE-2012-3881", "RTG 0.7.4 and RTG2 0.9.2 95/view/rtg.php",
               "numeric", "high"),
)

#: The rest of the ~30-record July-2012 cohort (synthesized to schema).
_COHORT_PRODUCTS: tuple[tuple[str, str, str], ...] = (
    ("WordPress plugin Newsletter 1.5", "numeric", "high"),
    ("phpMyAdmin table_ops 3.4.x", "string", "medium"),
    ("e107 CMS content.php 1.0.4", "numeric", "high"),
    ("OpenCart product filter 1.5.3", "string", "medium"),
    ("MyBB private.php 1.6.8", "numeric", "high"),
    ("Piwigo picture.php 2.4.2", "numeric", "medium"),
    ("Dolphin 7.0.9 search module", "string", "high"),
    ("vBulletin announcement.php 4.1", "numeric", "high"),
    ("Zen Cart ipn_main_handler 1.5", "string", "medium"),
    ("SMF profile view 2.0.2", "numeric", "medium"),
    ("Tiki Wiki tiki-listpages 8.3", "order-by", "high"),
    ("Joomla com_jce 2.1.x", "numeric", "high"),
    ("Coppermine gallery displayimage 1.5.18", "numeric", "medium"),
    ("XOOPS mydirname module 2.5.4", "string", "high"),
    ("osCommerce categories.php 2.3.1", "numeric", "medium"),
    ("PrestaShop getProducts 1.4.8", "order-by", "medium"),
    ("Moodle grade report 2.2.3", "string", "medium"),
    ("concrete5 index.php 5.5.2", "numeric", "high"),
    ("LimeSurvey admin 1.92", "string", "high"),
    ("Gallery3 rest module 3.0.3", "numeric", "medium"),
    ("TYPO3 felogin 4.5.x", "string", "high"),
    ("Magento catalog search 1.6.2", "string", "medium"),
    ("web2py admin 1.99.7", "numeric", "medium"),
    ("GLPI tracking.php 0.83.3", "numeric", "high"),
    ("Mantis view_all_set 1.2.10", "order-by", "medium"),
    ("DokuWiki authmysql 2012-01-25", "string", "high"),
)

#: Which attack families exercise which injection context.
CONTEXT_FAMILIES: dict[str, tuple[str, ...]] = {
    "numeric": ("union-extract", "boolean-blind", "time-blind",
                "error-based", "enumeration"),
    "string": ("tautology", "union-extract", "boolean-blind",
               "encoded-evasion", "quote-probe"),
    "order-by": ("enumeration",),
}


def july_2012_cohort() -> list[VulnRecord]:
    """All July-2012 records: Table I's four plus the synthesized rest."""
    records = list(TABLE1_RECORDS)
    for index, (product, context, risk) in enumerate(_COHORT_PRODUCTS):
        records.append(
            VulnRecord(f"CVE-2012-9{index:03d}", product, context, risk)
        )
    return records


#: Ordered classification rules: first matching pattern wins.  Used to
#: type *crawled* samples, whose generating family is unknown (the paper's
#: reviewers likewise judged coverage from the payload text alone).
_CLASSIFY_RULES: tuple[tuple[str, str], ...] = (
    (r"union\s+(?:all\s+)?select", "union-extract"),
    (r"extractvalue|updatexml|floor\s*\(\s*rand|exp\s*\(\s*~|gtid_subset",
     "error-based"),
    (r"sleep\s*\(|benchmark\s*\(", "time-blind"),
    (r"load_file|into\s+(?:out|dump)file", "file-io"),
    (r";\s*(?:drop|insert|update|delete|create|select|shutdown)",
     "stacked-query"),
    (r"order\s+by\s+\d|group\s+by|limit\s+\d", "enumeration"),
    (r"char\s*\(\s*\d+\s*,|0x[0-9a-f]{4,}", "encoded-evasion"),
    (r"(?:and|or)\s+(?:ascii|ord|length|mid|substring?|exists)\s*\(",
     "boolean-blind"),
    (r"(?:'|\")\s*(?:or|and|\|\||&&)|or\s+\d+\s*=|and\s+\d+\s*=",
     "tautology"),
    (r"^.{0,24}(?:'|\"|%27|%22)\)?;?$", "quote-probe"),
)


def classify_payload(payload: str) -> str:
    """Best-effort family classification of a (possibly crawled) payload."""
    from repro.normalize import normalize
    from repro.regexlib import matches

    normalized = normalize(payload)
    for pattern, family in _CLASSIFY_RULES:
        if matches(pattern, normalized):
            return family
    return "fuzz-junk"


def coverage(
    records: list[VulnRecord],
    samples: list[AttackSample],
) -> dict[str, bool]:
    """Per-CVE coverage of the corpus (the Section II-A heuristic).

    A record is covered when the corpus contains at least one sample from a
    family applicable to the record's injection context.  Samples without a
    ground-truth family label (crawled corpora) are classified from their
    payload text.
    """
    present_families = {
        s.family if s.family else classify_payload(s.payload)
        for s in samples
    }
    result: dict[str, bool] = {}
    for record in records:
        needed = CONTEXT_FAMILIES.get(record.context, ())
        result[record.cve_id] = any(f in present_families for f in needed)
    return result
