"""Template renderer and corpus generator for SQLi attack samples.

This stands in for the paper's webcrawled corpus (Section II-A): ~30,000
SQLi samples collected from public portals.  The generator draws a family,
renders one of its templates with randomized slot values, applies evasion
mutations (:mod:`repro.corpus.mutators`), and wraps the payload into an
HTTP query string — the same representation the paper extracts from crawled
HTTP request payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.families import FAMILIES, Family
from repro.corpus.mutators import MUTATORS, Mutator

#: Table/column/path vocabularies used to fill template slots.
TABLE_NAMES = (
    "users", "members", "admin", "accounts", "products", "orders",
    "customers", "articles", "news", "sessions", "login", "user_data",
)
COLUMN_NAMES = (
    "id", "username", "password", "email", "name", "title", "user_id",
    "login", "pass", "credit_card", "secret",
)
PARAM_NAMES = (
    "id", "cat", "page", "item", "pid", "uid", "view", "article", "prod",
    "category", "news_id", "search", "q", "name", "file",
)
FILE_PATHS = (
    "/etc/passwd", "/etc/hosts", "c:/boot.ini", "/var/www/html/config.php",
    "/etc/mysql/my.cnf",
)
DB_FUNCS = (
    "database()", "version()", "user()", "current_user()", "@@version",
    "@@datadir", "@@hostname", "system_user()", "schema()",
)
JUNK_TOKENS = (
    "zzxxccvv", "aaabbb", "test123", "qwerty", "foo bar", "0000", "xyz",
    "%ff%fe", "~!@", "....", "abcdefgh",
)


@dataclass(frozen=True)
class AttackSample:
    """One SQLi attack sample as the pipeline consumes it.

    Attributes:
        sample_id: stable unique id within a corpus.
        payload: the full query-string payload (``param=value&...``).
        family: generating family name (ground truth for cluster analysis;
            never shown to the detectors).
        portal: which simulated portal published it (filled by the crawler).
    """

    sample_id: str
    payload: str
    family: str
    portal: str = ""


class TemplateRenderer:
    """Fills ``{slot}`` placeholders in family templates.

    All randomness flows through one :class:`numpy.random.Generator`, making
    corpus generation fully reproducible from a seed.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    # -- slot fillers ------------------------------------------------------

    def _pick(self, options: tuple[str, ...]) -> str:
        return options[int(self._rng.integers(len(options)))]

    def _int(self, low: int, high: int) -> int:
        return int(self._rng.integers(low, high + 1))

    def _cols(self) -> str:
        count = self._int(1, 12)
        style = self._int(0, 2)
        if style == 0:
            return ",".join(str(i + 1) for i in range(count))
        if style == 1:
            return ",".join("null" for _ in range(count))
        return ",".join(
            self._pick(("1", "null", "'a'", "0x61")) for _ in range(count)
        )

    def _cols_concat(self) -> str:
        count = self._int(2, 10)
        position = self._int(0, count - 1)
        parts = [str(i + 1) for i in range(count)]
        inner = ",".join(
            self._pick(DB_FUNCS) for _ in range(self._int(1, 3))
        ).replace(",", ",char(58),")
        parts[position] = f"concat({inner})"
        return ",".join(parts)

    def _charlist(self) -> str:
        word = self._pick(("admin", "root", "user", "pass", "true", "ok"))
        return ",".join(str(ord(ch)) for ch in word)

    def _hex(self, text: str) -> str:
        return text.encode("ascii").hex()

    def _subquery(self) -> str:
        table = self._pick(TABLE_NAMES)
        column = self._pick(COLUMN_NAMES)
        kind = self._int(0, 2)
        if kind == 0:
            return f"select {column} from {table} limit 1"
        if kind == 1:
            return f"select {self._pick(DB_FUNCS)}"
        return (
            "select table_name from information_schema.tables "
            f"limit {self._int(0, 20)},1"
        )

    def render(self, template: str) -> str:
        """Render one template into a concrete payload value."""
        quote = self._pick(("'", "'", "'", '"'))
        slots = {
            "base": str(self._int(1, 9999)),
            "q": quote,
            "qq": '"',
            "n": str(self._int(1, 20)),
            "m": str(self._int(21, 99)),
            "bign": str(self._int(100, 10000)),
            "bigN": str(self._int(1000000, 50000000)),
            "byte": str(self._int(32, 126)),
            "sleep": str(self._int(1, 10)),
            "cols": self._cols(),
            "cols_concat": self._cols_concat(),
            "table": self._pick(TABLE_NAMES),
            "col": self._pick(COLUMN_NAMES),
            "dbfunc": self._pick(DB_FUNCS),
            "subq": self._subquery(),
            "cmt": self._pick(("-- -", "--+", "-- ", "#", ";--", "")),
            "ch": self._pick("abcdefr0123"),
            "charlist": self._charlist(),
            "hexstr": self._hex(self._pick(("admin", "root", "version"))),
            "hextable": self._hex(self._pick(TABLE_NAMES)),
            "hexpath": self._hex(self._pick(FILE_PATHS)),
            "path": self._pick(FILE_PATHS),
            "junk": self._pick(JUNK_TOKENS),
        }
        out = template
        for name, value in slots.items():
            out = out.replace("{" + name + "}", value)
        if "{" in out and "}" in out:
            # `{{...}}` style literals in fuzz templates are intentional.
            out = out.replace("{{", "{").replace("}}", "}")
        return out


class CorpusGenerator:
    """Generates a labelled SQLi corpus of any size from a seed.

    Args:
        seed: RNG seed; two generators with the same seed produce the same
            corpus.
        families: attack families to draw from (defaults to all eleven).
        mutators: evasion mutations applied post-render.
        mutation_rate: probability that a rendered payload receives at least
            one mutation pass.
    """

    def __init__(
        self,
        seed: int = 2012,
        families: tuple[Family, ...] = FAMILIES,
        mutators: tuple[Mutator, ...] = MUTATORS,
        mutation_rate: float = 0.45,
    ) -> None:
        if not families:
            raise ValueError("at least one family is required")
        self._rng = np.random.default_rng(seed)
        self._families = families
        self._mutators = mutators
        self._mutation_rate = mutation_rate
        self._renderer = TemplateRenderer(self._rng)
        weights = np.array([f.weight for f in families], dtype=float)
        self._probs = weights / weights.sum()

    def sample(self, sample_id: str = "s0") -> AttackSample:
        """Generate a single attack sample."""
        family = self._families[
            int(self._rng.choice(len(self._families), p=self._probs))
        ]
        template = family.templates[
            int(self._rng.integers(len(family.templates)))
        ]
        value = self._renderer.render(template)
        if self._rng.random() < self._mutation_rate:
            passes = int(self._rng.integers(1, 3))
            for _ in range(passes):
                mutator = self._mutators[
                    int(self._rng.integers(len(self._mutators)))
                ]
                value = mutator(value, self._rng)
        param = PARAM_NAMES[int(self._rng.integers(len(PARAM_NAMES)))]
        payload = f"{param}={value}"
        if self._rng.random() < 0.3:
            extra = PARAM_NAMES[int(self._rng.integers(len(PARAM_NAMES)))]
            payload = f"{extra}={self._rng.integers(1, 100)}&{payload}"
        return AttackSample(sample_id=sample_id, payload=payload, family=family.name)

    def generate(self, count: int) -> list[AttackSample]:
        """Generate *count* samples (paper default: 30,000)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(f"atk-{i:06d}") for i in range(count)]
