"""Benign web-traffic generator (the FPR test substrate).

Section III-B: the FPR dataset is "a 1-week network trace at a university
institution ... including the institutional web servers, the registration
and payment servers, and the web interface for the mailing servers",
over 1.4 million GET requests with no attacks.

The generator reproduces the *adversarial* property of that trace: benign
requests whose parameters contain SQL-looking vocabulary — a search for
"union square hotels", a course named "SELECT TOPICS IN ML", an address on
"Ord Street", free-text feedback with apostrophes — which is exactly what
drives false positives in keyword-matching rulesets (the paper's
``.+UNION\\s+SELECT`` discussion in Section I).
"""

from __future__ import annotations

import numpy as np

from repro.http import HttpRequest, LABEL_BENIGN, Trace
from repro.http.url import quote

_HOSTS = (
    "www.university.edu", "registrar.university.edu", "pay.university.edu",
    "mail.university.edu", "courses.university.edu", "library.university.edu",
)

_STATIC_PATHS = (
    "/index.html", "/about/", "/admissions/", "/img/logo.png",
    "/css/main.css", "/js/app.js", "/news/2012/07/", "/calendar/",
    "/people/faculty.html", "/research/", "/favicon.ico", "/robots.txt",
)

#: Mundane searches: the overwhelming bulk of real queries (~90%).
_MUNDANE_PHRASES = (
    "where is the registrar office", "joining the chess club",
    "how to update my address", "grant application deadline",
    "table tennis club", "c++ programming tutorial",
    "what is a database index", "create account help",
    "delete my account", "char broil recipes", "physics 101 final",
    "parking permit renewal", "wifi setup guide", "cafeteria menu monday",
    "thesis template latex", "gym membership", "null hypothesis testing",
    "keys lost and found", "exists philosophy essay",
    "like new textbooks for sale", "drop a class deadline",
    "insert coin arcade museum", "course selection deadline",
    "campus shuttle schedule", "final exam locations",
    "library opening hours", "housing application status",
    "student health center", "career fair employers", "tuition payment plan",
)

#: Benign English that *contains* SQL vocabulary or apostrophes — the
#: soft overlap the paper's Section I discusses (``UNION`` and ``SELECT``
#: "are also commonly found in benign database queries from web
#: applications"); roughly a tenth of searches.
_SQLISH_PHRASES = (
    "student union hours", "union square directions", "credit union atm",
    "select topics in machine learning", "group by assignment calculus",
    "o'brien hall directions", "int'l student services",
)

#: Rare "hot" phrases: the handful of benign strings that actually trip
#: keyword rulesets, each with its own occurrence rate *within searches*.
#: These rates are the lever that positions the baselines' FPRs.
_HOT_PHRASES = (
    ("1=1 boolean logic homework", 0.0020),
    ("tickets order by 10 june", 0.0020),
    ("schedule -- fall semester", 0.0015),
    ("select suggested readings from the syllabus", 0.0015),
    ("men's and women's soccer", 0.0010),
    ("rock 'n' roll history course", 0.0008),
)
_HOT_TOTAL = sum(rate for _, rate in _HOT_PHRASES)

_COURSE_CODES = ("cs101", "ee201", "math250", "bio110", "chem301", "phys172")
_FIRST_NAMES = ("alice", "bob", "carol", "dave", "erin", "frank", "grace")
_LAST_NAMES = ("smith", "o'connor", "lee", "d'angelo", "garcia", "chen")


class BenignTrafficGenerator:
    """Seeded generator of realistic benign HTTP requests.

    The mix: ~55% static-asset and page fetches (no parameters at all),
    ~20% searches, ~15% registration/course/catalog queries with numeric
    and string parameters, ~10% webmail/payment navigation.
    """

    def __init__(self, seed: int = 1406) -> None:
        self._rng = np.random.default_rng(seed)

    def _pick(self, options: tuple[str, ...]) -> str:
        return options[int(self._rng.integers(len(options)))]

    def request(self) -> HttpRequest:
        """Generate one benign request."""
        roll = self._rng.random()
        if roll < 0.55:
            return self._static()
        if roll < 0.75:
            return self._search()
        if roll < 0.90:
            return self._registration()
        return self._mail_or_payment()

    def _static(self) -> HttpRequest:
        return HttpRequest(
            host=self._pick(_HOSTS),
            path=self._pick(_STATIC_PATHS),
            label=LABEL_BENIGN,
        )

    def _search_phrase(self) -> str:
        roll = self._rng.random()
        if roll < _HOT_TOTAL:
            cursor = 0.0
            for phrase, rate in _HOT_PHRASES:
                cursor += rate
                if roll < cursor:
                    return phrase
        if roll < 0.10:
            return self._pick(_SQLISH_PHRASES)
        return self._pick(_MUNDANE_PHRASES)

    def _search(self) -> HttpRequest:
        phrase = self._search_phrase()
        page = int(self._rng.integers(1, 5))
        query = f"q={quote(phrase)}&page={page}"
        if self._rng.random() < 0.3:
            query += "&sort=" + self._pick(("date", "relevance", "title"))
        return HttpRequest(
            host=self._pick(_HOSTS), path="/search", query=query,
            label=LABEL_BENIGN,
        )

    def _registration(self) -> HttpRequest:
        kind = self._rng.random()
        if kind < 0.4:
            query = (
                f"course={self._pick(_COURSE_CODES)}"
                f"&term=fall2012&section={int(self._rng.integers(1, 9))}"
            )
            path = "/register/enroll"
        elif kind < 0.7:
            name = f"{self._pick(_FIRST_NAMES)} {self._pick(_LAST_NAMES)}"
            query = f"name={quote(name)}&id={int(self._rng.integers(10000, 99999))}"
            path = "/directory/lookup"
        else:
            query = (
                f"isbn=97{int(self._rng.integers(10 ** 10, 10 ** 11))}"
                f"&format={self._pick(('pdf', 'print', 'ebook'))}"
            )
            path = "/library/catalog"
        return HttpRequest(
            host="registrar.university.edu", path=path, query=query,
            label=LABEL_BENIGN,
        )

    def _mail_or_payment(self) -> HttpRequest:
        if self._rng.random() < 0.5:
            folder = self._pick(("inbox", "sent", "archive", "trash"))
            query = f"folder={folder}&msg={int(self._rng.integers(1, 5000))}"
            return HttpRequest(
                host="mail.university.edu", path="/webmail/view", query=query,
                label=LABEL_BENIGN,
            )
        query = (
            f"invoice={int(self._rng.integers(100000, 999999))}"
            f"&amount={int(self._rng.integers(10, 2000))}.00&currency=usd"
        )
        return HttpRequest(
            host="pay.university.edu", path="/billing/status", query=query,
            label=LABEL_BENIGN,
        )

    def trace(self, count: int, name: str = "benign-week") -> Trace:
        """A benign trace of *count* requests (paper: ~1.4M over a week)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        trace = Trace(name=name)
        for _ in range(count):
            trace.append(self.request())
        return trace
