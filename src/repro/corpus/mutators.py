"""Evasion mutations applied to rendered payloads.

Public sample dumps are full of encoding and whitespace tricks — the same
tricks that motivate the paper's normalization transformations.  Each
mutator takes a payload value and an RNG and returns a transformed value.
The normalizer must undo all of them; a property test
(``tests/corpus/test_mutators.py``) asserts exactly that.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

Mutator = Callable[[str, np.random.Generator], str]


def mixed_case(value: str, rng: np.random.Generator) -> str:
    """Randomize letter case: ``union select`` → ``UnIoN SeLeCt``."""
    flips = rng.random(len(value)) < 0.5
    return "".join(
        ch.upper() if flip and ch.isalpha() else ch
        for ch, flip in zip(value, flips)
    )


def url_encode_specials(value: str, rng: np.random.Generator) -> str:
    """Percent-encode quotes, spaces, and commas (scanner wire format)."""
    table = {"'": "%27", '"': "%22", " ": "%20", ",": "%2C", "#": "%23",
             ";": "%3B", "(": "%28", ")": "%29"}
    out = []
    for ch in value:
        encoded = table.get(ch)
        if encoded is not None and rng.random() < 0.8:
            out.append(encoded)
        else:
            out.append(ch)
    return "".join(out)


def double_encode_quotes(value: str, rng: np.random.Generator) -> str:
    """Double-encode quotes: ``'`` → ``%2527`` (decodes to ``%27`` then ``'``)."""
    del rng
    return value.replace("'", "%2527").replace('"', "%2522")


def plus_spaces(value: str, rng: np.random.Generator) -> str:
    """Encode spaces as ``+`` (form-urlencoded convention)."""
    del rng
    return value.replace(" ", "+")


def comment_spaces(value: str, rng: np.random.Generator) -> str:
    """Replace spaces with inline comments: ``union select`` →
    ``union/**/select`` — the classic keyword-splitting evasion."""
    separators = ("/**/", "/*x*/", "%09", "%0a")
    out = []
    for ch in value:
        if ch == " " and rng.random() < 0.7:
            out.append(separators[int(rng.integers(len(separators)))])
        else:
            out.append(ch)
    return "".join(out)


def tab_spaces(value: str, rng: np.random.Generator) -> str:
    """Replace spaces with tabs/newlines (alternate SQL whitespace)."""
    whitespace = ("\t", "\n", "  ")
    out = []
    for ch in value:
        if ch == " " and rng.random() < 0.6:
            out.append(whitespace[int(rng.integers(len(whitespace)))])
        else:
            out.append(ch)
    return "".join(out)


def unicode_fullwidth(value: str, rng: np.random.Generator) -> str:
    """Swap some ASCII characters for their fullwidth Unicode forms."""
    out = []
    for ch in value:
        if 0x21 <= ord(ch) <= 0x7E and ch.isalpha() and rng.random() < 0.3:
            out.append(chr(ord(ch) - 0x21 + 0xFF01))
        else:
            out.append(ch)
    return "".join(out)


MUTATORS: tuple[Mutator, ...] = (
    mixed_case,
    url_encode_specials,
    double_encode_quotes,
    plus_spaces,
    comment_spaces,
    tab_spaces,
    unicode_fullwidth,
)
