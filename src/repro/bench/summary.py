"""The unified eval summary and corpus content hashing.

``scripts/reproduce_all.py`` folds every ``BENCH_*.json`` artifact into
one ``benchmarks/results/SUMMARY.json``: per-bench kind/seed/metrics
plus the corpus hash ledger, so a reviewer (or a later speed PR) reads
the whole evaluation trajectory from a single schema-validated file.

Corpus hashing follows the canary ledger's discipline: a corpus is
fingerprinted by the SHA-256 over its payloads' individual SHA-256
digests in order, so two corpora hash equal iff they contain the same
payloads in the same order.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from typing import Any

from repro.bench.model import BenchSchemaError, validate_bench

__all__ = [
    "SUMMARY_SCHEMA",
    "build_summary",
    "corpus_digest",
    "validate_summary",
]

#: Current summary schema version.
SUMMARY_SCHEMA = 1

#: Exactly these top-level summary keys.
_SUMMARY_KEYS = (
    "schema",
    "mode",
    "provenance",
    "benches",
    "corpus_hashes",
)


def corpus_digest(payloads: Iterable[str]) -> str:
    """Order-sensitive SHA-256 fingerprint of a payload corpus."""
    outer = hashlib.sha256()
    for payload in payloads:
        outer.update(
            hashlib.sha256(payload.encode("utf-8")).digest()
        )
    return outer.hexdigest()


def build_summary(
    artifacts: Iterable[dict[str, Any]],
    *,
    mode: str,
    corpus_hashes: dict[str, str],
    provenance: dict[str, str] | None = None,
) -> dict[str, Any]:
    """Fold validated artifacts into the unified summary payload.

    Args:
        artifacts: artifact payloads (each validated against the bench
            schema before folding).
        mode: how the bundle was produced (``"full"`` or ``"quick"``).
        corpus_hashes: the corpus hash ledger body.
        provenance: environment fingerprint; collected when absent.
    """
    from repro.bench.model import collect_provenance

    benches: dict[str, Any] = {}
    for artifact in artifacts:
        validate_bench(artifact)
        slug = artifact["bench"]
        if slug in benches:
            raise BenchSchemaError(
                f"duplicate artifact slug {slug!r} in summary"
            )
        benches[slug] = {
            "kind": artifact["kind"],
            "seed": artifact["seed"],
            "metrics": dict(artifact["metrics"]),
        }
    return {
        "schema": SUMMARY_SCHEMA,
        "mode": mode,
        "provenance": (
            dict(provenance)
            if provenance is not None
            else collect_provenance()
        ),
        "benches": benches,
        "corpus_hashes": dict(corpus_hashes),
    }


def validate_summary(payload: Any) -> dict[str, Any]:
    """Check a summary payload; returns it on success.

    Raises:
        BenchSchemaError: wrong shape, missing/extra keys, or a bench
            entry that lacks kind/seed/metrics.
    """
    if not isinstance(payload, dict):
        raise BenchSchemaError(
            f"summary must be an object, got {type(payload).__name__}"
        )
    missing = [key for key in _SUMMARY_KEYS if key not in payload]
    if missing:
        raise BenchSchemaError(f"summary missing required keys {missing}")
    extra = [key for key in payload if key not in _SUMMARY_KEYS]
    if extra:
        raise BenchSchemaError(f"summary carries unknown keys {extra}")
    if payload["schema"] != SUMMARY_SCHEMA:
        raise BenchSchemaError(
            f"unsupported summary schema {payload['schema']!r}"
        )
    if payload["mode"] not in ("full", "quick"):
        raise BenchSchemaError(
            f"summary mode must be 'full' or 'quick', "
            f"got {payload['mode']!r}"
        )
    if not isinstance(payload["provenance"], dict):
        raise BenchSchemaError("summary 'provenance' must be an object")
    benches = payload["benches"]
    if not isinstance(benches, dict) or not benches:
        raise BenchSchemaError("summary 'benches' must be non-empty")
    for slug, entry in benches.items():
        if not isinstance(entry, dict) or set(entry) != {
            "kind",
            "seed",
            "metrics",
        }:
            raise BenchSchemaError(
                f"summary bench {slug!r} must carry exactly "
                f"kind/seed/metrics"
            )
        if not isinstance(entry["metrics"], dict) or not entry["metrics"]:
            raise BenchSchemaError(
                f"summary bench {slug!r} metrics must be non-empty"
            )
    if not isinstance(payload["corpus_hashes"], dict):
        raise BenchSchemaError("summary 'corpus_hashes' must be an object")
    return payload
