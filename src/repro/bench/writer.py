"""The one shared artifact writer every bench routes through.

Key order, float formatting, and trailing-newline behaviour are decided
here and nowhere else: artifacts serialize with sorted keys, two-space
indentation, ``allow_nan=False``, and exactly one trailing newline, so
that loading a committed artifact and re-dumping it reproduces the file
byte for byte (asserted by ``tests/bench/test_schema.py``).

The results directory defaults to ``benchmarks/results`` resolved from
the repository layout, overridable via ``REPRO_BENCH_RESULTS_DIR`` so
``scripts/reproduce_all.py`` (and its smoke test) can regenerate a full
artifact bundle into a scratch directory without touching the committed
ledger.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.bench.model import BenchResult, validate_bench

__all__ = [
    "artifact_path",
    "dump_bench_json",
    "list_artifacts",
    "load_artifact",
    "results_dir",
    "write_artifact",
]

#: Environment override for the artifact directory.
RESULTS_DIR_ENV = "REPRO_BENCH_RESULTS_DIR"

#: ``benchmarks/results`` relative to the repository root (this file
#: lives at ``src/repro/bench/writer.py``).
_DEFAULT_RESULTS_DIR = os.path.join(
    os.path.dirname(
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    ),
    "benchmarks",
    "results",
)


def results_dir() -> str:
    """The artifact directory (env-overridable, created on demand)."""
    directory = os.environ.get(RESULTS_DIR_ENV) or _DEFAULT_RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    return directory


def dump_bench_json(payload: Any) -> str:
    """Canonical serialization: sorted keys, 2-space indent, newline.

    ``allow_nan=False`` makes a NaN/inf metric a loud error instead of
    a silently non-standard artifact.
    """
    return (
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        + "\n"
    )


def artifact_path(bench: str, directory: str | None = None) -> str:
    """Where ``BENCH_<bench>.json`` lives."""
    return os.path.join(
        directory if directory is not None else results_dir(),
        f"BENCH_{bench}.json",
    )


def write_artifact(
    result: BenchResult, directory: str | None = None
) -> str:
    """Validate and write one artifact; returns the written path."""
    path = artifact_path(result.bench, directory)
    with open(path, "w") as handle:
        handle.write(result.to_json())
    return path


def load_artifact(path: str) -> dict[str, Any]:
    """Read and schema-validate one artifact file."""
    with open(path) as handle:
        return validate_bench(json.load(handle))


def list_artifacts(directory: str | None = None) -> list[str]:
    """Sorted paths of every ``BENCH_*.json`` in the results directory."""
    base = directory if directory is not None else results_dir()
    if not os.path.isdir(base):
        return []
    return sorted(
        os.path.join(base, name)
        for name in os.listdir(base)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
