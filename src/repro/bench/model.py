"""The shared benchmark result model and its strict schema.

The artifact layout is deliberately uniform across every bench — a flat
``metrics`` dict carries the numbers regression floors bind to
(throughput, µs/request, p50/p95/p99, speedup, TPR/FPR and their derived
margins), ``data`` carries the bench-specific structured payload (table
rows, scaling curves, per-family ledgers), ``corpus`` carries SHA-256
content hashes of the inputs the bench measured, and ``provenance``
records against which code and environment the numbers were taken.

Validation is *strict*: a missing key, an extra key, or a mistyped value
all raise :class:`BenchSchemaError`.  Schema evolution happens by
bumping :data:`BENCH_SCHEMA`, never by tolerating drift.
"""

from __future__ import annotations

import json
import platform
import re
import sys
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BENCH_KINDS",
    "BENCH_SCHEMA",
    "BenchResult",
    "BenchSchemaError",
    "collect_provenance",
    "validate_bench",
]

#: Current artifact schema version.
BENCH_SCHEMA = 1

#: The benchmark taxonomy: paper experiments, tables, and figures, plus
#: the reproduction's own ablations, performance benches, and
#: extensions.
BENCH_KINDS = (
    "experiment",
    "table",
    "figure",
    "ablation",
    "perf",
    "extension",
)

#: Exactly these top-level keys, no more, no fewer.
_TOP_LEVEL_KEYS = (
    "schema",
    "bench",
    "kind",
    "seed",
    "metrics",
    "data",
    "corpus",
    "provenance",
)

#: Exactly these provenance keys (all strings).
_PROVENANCE_KEYS = ("git", "python", "platform", "numpy")

_SLUG_RE = re.compile(r"^[a-z0-9][a-z0-9_]*$")
_SHA256_RE = re.compile(r"^[0-9a-f]{64}$")

#: Types a ``metrics`` value may take.  Bool before int matters only for
#: error messages; ``isinstance(True, int)`` holds either way.
_METRIC_TYPES = (bool, int, float, str)


class BenchSchemaError(ValueError):
    """An artifact that does not conform to the bench schema."""


def collect_provenance(git: str | None = None) -> dict[str, str]:
    """The environment fingerprint recorded in every artifact.

    Args:
        git: code version override; computed via
            :func:`repro.obs.manifest.git_describe` when absent.
    """
    import numpy

    from repro.obs.manifest import git_describe

    return {
        "git": git if git is not None else git_describe(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "numpy": numpy.__version__,
    }


def _json_safe(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    import numpy

    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, numpy.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    if isinstance(value, numpy.generic):
        return value.item()
    return value


def _require_json_safe(value: Any, where: str) -> None:
    """Reject payloads json.dumps would mangle or refuse."""
    try:
        json.dumps(value, allow_nan=False)
    except (TypeError, ValueError) as error:
        raise BenchSchemaError(
            f"{where} is not JSON-serializable: {error}"
        ) from error


def validate_bench(payload: Any) -> dict[str, Any]:
    """Check an artifact payload against the schema; return it on success.

    Raises:
        BenchSchemaError: wrong container type, missing or extra keys,
            mistyped values, malformed slugs or hashes, or non-JSON-safe
            nesting anywhere in ``data``.
    """
    if not isinstance(payload, dict):
        raise BenchSchemaError(
            f"artifact must be an object, got {type(payload).__name__}"
        )
    missing = [key for key in _TOP_LEVEL_KEYS if key not in payload]
    if missing:
        raise BenchSchemaError(f"artifact missing required keys {missing}")
    extra = [key for key in payload if key not in _TOP_LEVEL_KEYS]
    if extra:
        raise BenchSchemaError(f"artifact carries unknown keys {extra}")
    if not isinstance(payload["schema"], int) or isinstance(
        payload["schema"], bool
    ):
        raise BenchSchemaError("'schema' must be an integer")
    if payload["schema"] != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"unsupported bench schema {payload['schema']!r} "
            f"(expected {BENCH_SCHEMA})"
        )
    if not isinstance(payload["bench"], str) or not _SLUG_RE.match(
        payload["bench"]
    ):
        raise BenchSchemaError(
            f"'bench' must be a [a-z0-9_] slug, got {payload['bench']!r}"
        )
    if payload["kind"] not in BENCH_KINDS:
        raise BenchSchemaError(
            f"'kind' must be one of {BENCH_KINDS}, got {payload['kind']!r}"
        )
    if not isinstance(payload["seed"], int) or isinstance(
        payload["seed"], bool
    ):
        raise BenchSchemaError("'seed' must be an integer")
    metrics = payload["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise BenchSchemaError("'metrics' must be a non-empty object")
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise BenchSchemaError(f"metric key {key!r} is not a string")
        if not isinstance(value, _METRIC_TYPES):
            raise BenchSchemaError(
                f"metric {key!r} must be a scalar "
                f"(bool/int/float/str), got {type(value).__name__}"
            )
        if isinstance(value, float) and value != value:
            raise BenchSchemaError(f"metric {key!r} is NaN")
    if not isinstance(payload["data"], dict):
        raise BenchSchemaError("'data' must be an object")
    _require_json_safe(payload["data"], "'data'")
    corpus = payload["corpus"]
    if not isinstance(corpus, dict):
        raise BenchSchemaError("'corpus' must be an object")
    for name, digest in corpus.items():
        if not isinstance(name, str):
            raise BenchSchemaError(f"corpus key {name!r} is not a string")
        if not isinstance(digest, str) or not _SHA256_RE.match(digest):
            raise BenchSchemaError(
                f"corpus {name!r} must map to a sha256 hex digest, "
                f"got {digest!r}"
            )
    provenance = payload["provenance"]
    if not isinstance(provenance, dict):
        raise BenchSchemaError("'provenance' must be an object")
    missing = [key for key in _PROVENANCE_KEYS if key not in provenance]
    if missing:
        raise BenchSchemaError(f"provenance missing keys {missing}")
    extra = [key for key in provenance if key not in _PROVENANCE_KEYS]
    if extra:
        raise BenchSchemaError(f"provenance carries unknown keys {extra}")
    for key in _PROVENANCE_KEYS:
        if not isinstance(provenance[key], str):
            raise BenchSchemaError(f"provenance {key!r} must be a string")
    return payload


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's machine-readable result.

    Attributes:
        bench: unique artifact slug (``BENCH_<bench>.json``).
        kind: taxonomy bucket, one of :data:`BENCH_KINDS`.
        seed: the master seed the measurement ran under.
        metrics: flat scalar metrics — the values regression floors and
            the unified summary bind to.
        data: bench-specific structured payload (rows, curves, ledgers).
        corpus: SHA-256 content hashes of the measured inputs.
        provenance: git/environment fingerprint; collected automatically
            when left ``None``.
    """

    bench: str
    kind: str
    seed: int
    metrics: dict[str, Any]
    data: dict[str, Any] = field(default_factory=dict)
    corpus: dict[str, str] = field(default_factory=dict)
    provenance: dict[str, str] | None = None

    def to_dict(self) -> dict[str, Any]:
        """The validated artifact payload."""
        payload = {
            "schema": BENCH_SCHEMA,
            "bench": self.bench,
            "kind": self.kind,
            "seed": self.seed,
            "metrics": _json_safe(dict(self.metrics)),
            "data": _json_safe(dict(self.data)),
            "corpus": dict(self.corpus),
            "provenance": (
                dict(self.provenance)
                if self.provenance is not None
                else collect_provenance()
            ),
        }
        return validate_bench(payload)

    def to_json(self) -> str:
        """The canonical artifact body (see :func:`dump_bench_json`)."""
        from repro.bench.writer import dump_bench_json

        return dump_bench_json(self.to_dict())
