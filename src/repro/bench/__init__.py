"""Machine-readable benchmark trajectory: one schema for every artifact.

Every benchmark under ``benchmarks/`` regenerates a human-readable text
table *and* a schema-versioned JSON artifact
(``benchmarks/results/BENCH_<slug>.json``) so that later performance PRs
can prove their win against a committed ledger instead of eyeballing
text diffs.  This package is the single definition of that artifact:

- :class:`BenchResult` — the shared result model (slug, kind, seed,
  flat ``metrics``, nested ``data``, ``corpus`` content hashes, and
  git/environment ``provenance``);
- :func:`validate_bench` / :class:`BenchSchemaError` — strict schema
  validation (missing, extra, and mistyped fields all rejected);
- :func:`dump_bench_json` / :func:`write_artifact` — the one canonical
  writer (sorted keys, two-space indent, trailing newline, NaN-free)
  every bench routes through, so artifacts are byte-identical under
  re-serialization;
- :func:`corpus_digest` — SHA-256 content hashing for the corpora a
  bench measured, mirroring the canary ledger's discipline;
- :func:`build_summary` / :func:`validate_summary` — the unified
  ``SUMMARY.json`` eval summary ``scripts/reproduce_all.py`` folds all
  artifacts into.

``scripts/ci_bench_guard.py`` validates every committed artifact
against this schema and enforces per-bench regression floors.
"""

from repro.bench.model import (
    BENCH_KINDS,
    BENCH_SCHEMA,
    BenchResult,
    BenchSchemaError,
    collect_provenance,
    validate_bench,
)
from repro.bench.summary import (
    SUMMARY_SCHEMA,
    build_summary,
    corpus_digest,
    validate_summary,
)
from repro.bench.writer import (
    artifact_path,
    dump_bench_json,
    list_artifacts,
    load_artifact,
    results_dir,
    write_artifact,
)

__all__ = [
    "BENCH_KINDS",
    "BENCH_SCHEMA",
    "SUMMARY_SCHEMA",
    "BenchResult",
    "BenchSchemaError",
    "artifact_path",
    "build_summary",
    "collect_provenance",
    "corpus_digest",
    "dump_bench_json",
    "list_artifacts",
    "load_artifact",
    "results_dir",
    "validate_bench",
    "validate_summary",
    "write_artifact",
]
