"""Chunk planning: how a batch of N independent items is split for workers.

Chunks are the unit of fan-out.  They must be (a) deterministic — the same
``(n_items, workers, chunk_size)`` always yields the same spans, so
parallel output can be reassembled in input order and compared bit-for-bit
against serial output — and (b) small enough to balance load but large
enough to amortize per-task IPC.
"""

from __future__ import annotations

#: Chunks per worker when no explicit chunk size is given.  Oversubscribing
#: each worker lets the pool rebalance when some chunks are slower (regex
#: cost varies wildly across payloads) without paying per-item IPC.
OVERSUBSCRIPTION = 4

#: Never plan chunks smaller than this unless the batch itself is smaller;
#: a chunk must outweigh the cost of pickling its payloads to a worker.
MIN_CHUNK = 8


def plan_chunks(
    n_items: int, workers: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Half-open ``(start, stop)`` spans covering ``range(n_items)``.

    Args:
        n_items: batch size.
        workers: worker count the plan should feed.
        chunk_size: explicit chunk size; when ``None`` the batch is split
            into ~``workers * OVERSUBSCRIPTION`` equal chunks (bounded
            below by :data:`MIN_CHUNK`).

    Raises:
        ValueError: on a negative batch size, non-positive worker count, or
            non-positive explicit chunk size.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if n_items == 0:
        return []
    if chunk_size is None:
        target = -(-n_items // (workers * OVERSUBSCRIPTION))
        chunk_size = max(min(target, n_items), min(MIN_CHUNK, n_items))
    return [
        (start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


def chunk_spans(items: list, spans: list[tuple[int, int]]) -> list[list]:
    """Materialize the item slices named by *spans*."""
    return [items[start:stop] for start, stop in spans]


def assign_round_robin(n_chunks: int, workers: int) -> list[list[int]]:
    """Chunk indices per worker, dealt cyclically.

    Used by the critical-path model: equal-size chunks dealt round-robin
    give each worker an (almost) equal share, mirroring how a pool drains
    a queue of uniform tasks.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    assignment: list[list[int]] = [[] for _ in range(workers)]
    for chunk in range(n_chunks):
        assignment[chunk % workers].append(chunk)
    return assignment
