"""Chunked multiprocess feature extraction.

Phase 2 is embarrassingly parallel: each sample's count vector depends
only on that sample, so a 30,000-row matrix is just 30,000 independent
regex scans.  The fan-out here splits a batch into deterministic chunks
(:mod:`repro.parallel.chunking`), ships them to ``fork``/``spawn`` worker
processes that each hold their *own* compiled-pattern catalog (compiled
once per worker at pool start, not per chunk), and reassembles rows in
input order — so the parallel matrix is bit-identical to the serial one.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.features.extractor import FeatureExtractor
from repro.features.matrix import FeatureMatrix
from repro.parallel.cache import CachedNormalizer
from repro.parallel.chunking import assign_round_robin, chunk_spans, plan_chunks
from repro.parallel.timing import timer_overhead

#: Batches smaller than this never leave the calling process: pool startup
#: costs more than the extraction itself.
MIN_PARALLEL_BATCH = 64

# -- worker side ---------------------------------------------------------------

_WORKER_EXTRACTOR: FeatureExtractor | None = None


def _init_extract_worker(extractor: FeatureExtractor) -> None:
    """Pool initializer: install this worker's private extractor.

    Unpickling the extractor recompiles every catalog pattern inside the
    worker, so each process owns its catalog for the pool's lifetime.
    """
    global _WORKER_EXTRACTOR
    _WORKER_EXTRACTOR = extractor


def _extract_chunk(job: tuple[int, list[str]]) -> tuple[int, np.ndarray]:
    """Extract one chunk; returns ``(chunk_index, rows)`` for reassembly."""
    index, payloads = job
    extractor = _WORKER_EXTRACTOR
    if extractor is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("extraction worker was not initialized")
    rows = [extractor.extract(payload) for payload in payloads]
    counts = (
        np.vstack(rows)
        if rows
        else np.zeros((0, len(extractor.catalog)), np.int32)
    )
    return index, counts


# -- driver side ---------------------------------------------------------------


class ParallelFeatureExtractor:
    """Fans :meth:`FeatureExtractor.extract_many` over a process pool.

    Args:
        extractor: the serial extractor to parallelize (catalog and
            normalizer are taken from it); a default one is built when
            omitted.
        workers: process count; defaults to the machine's CPU count.
        chunk_size: payloads per task; ``None`` picks a size that
            oversubscribes each worker ~4× (see
            :mod:`repro.parallel.chunking`).
        normalization_cache: per-worker LRU size for normalization results;
            0 disables caching.
    """

    def __init__(
        self,
        extractor: FeatureExtractor | None = None,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        normalization_cache: int = 4096,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.extractor = (
            extractor if extractor is not None else FeatureExtractor()
        )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.normalization_cache = normalization_cache

    def _worker_extractor(self) -> FeatureExtractor:
        """The extractor clone shipped to each worker (cached normalizer)."""
        if not self.normalization_cache:
            return self.extractor
        return FeatureExtractor(
            catalog=self.extractor.catalog,
            normalizer=CachedNormalizer(
                self.extractor.normalizer, maxsize=self.normalization_cache
            ),
        )

    def extract_many(
        self,
        payloads,
        *,
        sample_ids=None,
    ) -> FeatureMatrix:
        """Parallel :meth:`FeatureExtractor.extract_many`.

        Output is element-wise identical to the serial method (same counts,
        same row order, same ids); small batches and ``workers=1`` short-
        circuit to the serial path in-process.
        """
        items = list(payloads)
        if sample_ids is not None and len(sample_ids) != len(items):
            raise ValueError(
                f"{len(sample_ids)} sample ids for {len(items)} payloads"
            )
        spans = plan_chunks(len(items), self.workers, self.chunk_size)
        if (
            self.workers == 1
            or len(spans) <= 1
            or len(items) < MIN_PARALLEL_BATCH
        ):
            return self.extractor.extract_many(items, sample_ids=sample_ids)

        chunks = chunk_spans(items, spans)
        ordered: list[np.ndarray | None] = [None] * len(chunks)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            initializer=_init_extract_worker,
            initargs=(self._worker_extractor(),),
        ) as pool:
            for index, counts in pool.map(
                _extract_chunk, enumerate(chunks)
            ):
                ordered[index] = counts
        counts = np.vstack([c for c in ordered if c is not None])
        if sample_ids is None:
            ids = [f"s{i}" for i in range(counts.shape[0])]
        else:
            ids = list(sample_ids)
        return FeatureMatrix(
            counts=counts, catalog=self.extractor.catalog, sample_ids=ids
        )


# -- benchmarking --------------------------------------------------------------


@dataclass
class ExtractionBench:
    """Serial-versus-parallel extraction measurement for one worker count.

    Attributes:
        workers: worker count measured.
        n_payloads: batch size.
        n_chunks: chunks the batch was split into.
        serial_us: mean per-payload extraction time, timer overhead
            subtracted, measured in a plain serial pass.
        critical_path_us: mean per-payload time of the slowest worker under
            round-robin chunk assignment — the latency a core-per-worker
            deployment would exhibit.
        modeled_speedup: ``serial / critical path``.
        pool_wall_s: wall-clock seconds of the real process-pool run (its
            speedup depends on the cores actually available, unlike the
            model).
        identical: parallel output matched the serial matrix element-wise.
    """

    workers: int
    n_payloads: int
    n_chunks: int
    serial_us: float
    critical_path_us: float
    modeled_speedup: float
    pool_wall_s: float
    identical: bool


def bench_batch_extraction(
    payloads: list[str],
    *,
    extractor: FeatureExtractor | None = None,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    chunk_size: int | None = None,
) -> list[ExtractionBench]:
    """Measure batch extraction at several worker counts.

    One instrumented serial pass times every payload (overhead-corrected,
    see :func:`repro.parallel.timing.timer_overhead`); each worker count is
    then modeled by dealing the planned chunks round-robin and taking the
    slowest worker's share, and *run* through the real pool for wall-clock
    and a parity check.
    """
    extractor = extractor if extractor is not None else FeatureExtractor()
    overhead = timer_overhead()
    per_payload = np.zeros(len(payloads))
    rows = []
    for i, payload in enumerate(payloads):
        start = time.perf_counter()
        rows.append(extractor.extract(payload))
        per_payload[i] = max(time.perf_counter() - start - overhead, 0.0)
    serial_matrix = (
        np.vstack(rows) if rows else np.zeros((0, len(extractor.catalog)))
    )
    serial_total = float(per_payload.sum())
    n = len(payloads)

    results = []
    for count in workers:
        spans = plan_chunks(n, count, chunk_size) if n else []
        chunk_costs = [per_payload[start:stop].sum() for start, stop in spans]
        loads = [
            sum(chunk_costs[c] for c in assigned)
            for assigned in assign_round_robin(len(spans), count)
        ]
        critical = max(loads) if loads else 0.0
        parallel = ParallelFeatureExtractor(
            extractor, workers=count, chunk_size=chunk_size
        )
        start = time.perf_counter()
        matrix = parallel.extract_many(payloads)
        wall = time.perf_counter() - start
        results.append(ExtractionBench(
            workers=count,
            n_payloads=n,
            n_chunks=len(spans),
            serial_us=serial_total / n * 1e6 if n else 0.0,
            critical_path_us=critical / n * 1e6 if n else 0.0,
            modeled_speedup=serial_total / critical if critical > 0 else 1.0,
            pool_wall_s=wall,
            identical=bool(
                matrix.counts.shape == serial_matrix.shape
                and (matrix.counts == serial_matrix).all()
            ),
        ))
    return results
