"""Timer-overhead calibration for per-item instrumentation.

Wrapping every signature match or chunk in a ``perf_counter`` pair adds a
fixed cost *inside* the measured interval.  Summing thousands of such
intervals (as the Experiment-4 latency model does) folds that cost into
both the serial and the critical-path estimate — but not evenly: the
serial estimate absorbs ``n_signatures`` overheads per request while each
worker's share absorbs only its shard's worth, biasing the reported
speedup.  Subtracting a measured per-interval baseline removes the bias.
"""

from __future__ import annotations

import time


def timer_overhead(samples: int = 2000) -> float:
    """Median cost, in seconds, of one ``perf_counter()`` pair.

    Measures back-to-back ``perf_counter`` calls — exactly the
    instrumentation pattern the latency models use — and returns the median
    gap, which is robust to scheduler noise in a way the mean is not.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    gaps = []
    for _ in range(samples):
        start = time.perf_counter()
        gaps.append(time.perf_counter() - start)
    gaps.sort()
    return gaps[len(gaps) // 2]
