"""Batched detector runs: the request side of Experiment 4's fan-out.

Where :mod:`repro.parallel.extract` parallelizes over *samples at training
time*, this module parallelizes over *requests at detection time*: a trace
is chunked, chunks fan out to worker processes, and each worker drives its
private detector copy — for pSigene that means every payload is normalized
exactly once (through a per-worker LRU) and all signatures are evaluated
against the shared normalized form via
:meth:`~repro.core.signature.SignatureSet.evaluate`.

Verdicts are order-preserving and identical to the serial
:meth:`~repro.ids.engine.SignatureEngine.run` (asserted by the parity
tests): request chunking cannot change any per-request decision because
requests are independent.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.signature import SignatureSet
from repro.http.traffic import Trace
from repro.ids.engine import Alert, Detector, EngineRun
from repro.obs import trace as obs_trace
from repro.parallel.cache import CachedNormalizer
from repro.parallel.chunking import assign_round_robin, chunk_spans, plan_chunks
from repro.parallel.timing import timer_overhead

#: Traces smaller than this are inspected in-process; pool startup would
#: dominate.
MIN_PARALLEL_BATCH = 64

# -- worker side ---------------------------------------------------------------

_WORKER_DETECTOR: Detector | None = None


def _init_match_worker(detector: Detector) -> None:
    """Pool initializer: install this worker's private detector copy."""
    global _WORKER_DETECTOR
    _WORKER_DETECTOR = detector


def _match_chunk(
    job: tuple[int, list[str]],
) -> tuple[int, list[bool], list[float], list[list[int]]]:
    """Inspect one chunk; returns per-payload verdict columns."""
    index, payloads = job
    detector = _WORKER_DETECTOR
    if detector is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("matching worker was not initialized")
    flags: list[bool] = []
    scores: list[float] = []
    matched: list[list[int]] = []
    for payload in payloads:
        detection = detector.inspect(payload)
        flags.append(bool(detection.alert))
        scores.append(float(detection.score))
        matched.append(list(detection.matched_sids))
    return index, flags, scores, matched


# -- driver side ---------------------------------------------------------------


def _with_cached_normalizer(detector: Detector, maxsize: int) -> Detector:
    """A detector clone whose signature set normalizes through an LRU.

    Detectors without a ``signature_set`` (the baseline rulesets) are
    returned unchanged — they manage their own matching internals.
    """
    signature_set = getattr(detector, "signature_set", None)
    if not maxsize or not isinstance(signature_set, SignatureSet):
        return detector
    clone = copy.copy(detector)
    clone.signature_set = SignatureSet(
        signature_set.signatures,
        normalizer=CachedNormalizer(
            signature_set.normalizer, maxsize=maxsize
        ),
    )
    return clone


def run_batch(
    detector: Detector,
    trace: Trace,
    *,
    workers: int = 1,
    chunk_size: int | None = None,
    normalization_cache: int = 4096,
) -> EngineRun:
    """Inspect *trace* in chunks, optionally across worker processes.

    Args:
        detector: any engine-mountable detector; it must pickle when
            ``workers > 1`` (all in-tree detectors do).
        trace: requests to inspect.
        workers: process count; 1 keeps everything in-process.
        chunk_size: requests per task (``None`` = auto).
        normalization_cache: per-worker LRU size for normalization; 0
            disables it.

    Returns:
        An :class:`EngineRun` whose alerts and flags match the serial
        :meth:`SignatureEngine.run` exactly.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    with obs_trace.span(
        "engine.run_batch",
        detector=detector.name,
        requests=len(trace),
        workers=workers,
    ) as batch_span:
        run = _run_batch(
            detector,
            trace,
            workers=workers,
            chunk_size=chunk_size,
            normalization_cache=normalization_cache,
        )
        batch_span.set(alerts=run.alert_count)
    return run


def _run_batch(
    detector: Detector,
    trace: Trace,
    *,
    workers: int,
    chunk_size: int | None,
    normalization_cache: int,
) -> EngineRun:
    """The chunk/fan-out/merge body of :func:`run_batch`."""
    payloads = trace.payloads()
    n = len(payloads)
    spans = plan_chunks(n, workers, chunk_size)
    worker_detector = _with_cached_normalizer(detector, normalization_cache)

    if workers == 1 or len(spans) <= 1 or n < MIN_PARALLEL_BATCH:
        columns = [
            _match_chunk_with(worker_detector, (i, chunk))
            for i, chunk in enumerate(chunk_spans(payloads, spans))
        ]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(spans)),
            initializer=_init_match_worker,
            initargs=(worker_detector,),
        ) as pool:
            columns = list(
                pool.map(
                    _match_chunk,
                    enumerate(chunk_spans(payloads, spans)),
                )
            )

    flags = np.zeros(n, dtype=bool)
    all_scores = np.zeros(n, dtype=np.float64)
    run = EngineRun(detector=detector.name, trace_name=trace.name)
    for (index, chunk_flags, scores, matched), (start, _stop) in zip(
        columns, spans
    ):
        all_scores[start:start + len(scores)] = scores
        for offset, fired in enumerate(chunk_flags):
            if fired:
                position = start + offset
                flags[position] = True
                run.alerts.append(Alert(
                    request_index=position,
                    detector=detector.name,
                    score=scores[offset],
                    matched=matched[offset],
                ))
    run.alert_flags = flags
    run.scores = all_scores
    return run


def _match_chunk_with(
    detector: Detector, job: tuple[int, list[str]]
) -> tuple[int, list[bool], list[float], list[list[int]]]:
    """In-process `_match_chunk` against an explicit detector."""
    global _WORKER_DETECTOR
    previous = _WORKER_DETECTOR
    _WORKER_DETECTOR = detector
    try:
        return _match_chunk(job)
    finally:
        _WORKER_DETECTOR = previous


# -- benchmarking --------------------------------------------------------------


@dataclass
class BatchMatchBench:
    """Serial-versus-batched matching measurement for one worker count.

    Attributes:
        workers: worker count measured.
        n_requests: trace size.
        n_chunks: chunks the trace was split into.
        serial_us: mean per-request inspection time (overhead-corrected).
        critical_path_us: slowest worker's per-request share under
            round-robin chunk assignment.
        modeled_speedup: ``serial / critical path``.
        pool_wall_s: wall-clock seconds of the real process-pool run.
        identical: batched flags matched the serial run element-wise.
    """

    workers: int
    n_requests: int
    n_chunks: int
    serial_us: float
    critical_path_us: float
    modeled_speedup: float
    pool_wall_s: float
    identical: bool


def bench_batch_matching(
    detector: Detector,
    trace: Trace,
    *,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    chunk_size: int | None = None,
) -> list[BatchMatchBench]:
    """Measure batched matching at several worker counts.

    Mirrors :func:`repro.parallel.extract.bench_batch_extraction`: one
    overhead-corrected serial pass provides per-request costs, the
    critical-path model predicts the core-per-worker latency, and the real
    pool run provides wall clock plus a parity check.
    """
    payloads = trace.payloads()
    n = len(payloads)
    overhead = timer_overhead()
    per_request = np.zeros(n)
    serial_flags = np.zeros(n, dtype=bool)
    for i, payload in enumerate(payloads):
        start = time.perf_counter()
        detection = detector.inspect(payload)
        per_request[i] = max(time.perf_counter() - start - overhead, 0.0)
        serial_flags[i] = bool(detection.alert)
    serial_total = float(per_request.sum())

    results = []
    for count in workers:
        spans = plan_chunks(n, count, chunk_size) if n else []
        chunk_costs = [per_request[start:stop].sum() for start, stop in spans]
        loads = [
            sum(chunk_costs[c] for c in assigned)
            for assigned in assign_round_robin(len(spans), count)
        ]
        critical = max(loads) if loads else 0.0
        start = time.perf_counter()
        run = run_batch(
            detector, trace, workers=count, chunk_size=chunk_size
        )
        wall = time.perf_counter() - start
        results.append(BatchMatchBench(
            workers=count,
            n_requests=n,
            n_chunks=len(spans),
            serial_us=serial_total / n * 1e6 if n else 0.0,
            critical_path_us=critical / n * 1e6 if n else 0.0,
            modeled_speedup=serial_total / critical if critical > 0 else 1.0,
            pool_wall_s=wall,
            identical=bool((run.alert_flags == serial_flags).all()),
        ))
    return results
