"""LRU caching for the batch hot paths.

Normalization (five chained transforms, several regex substitution passes)
is the fixed per-request cost every detector pays before any matching
happens.  Real traffic repeats itself — scanners reuse templates, benign
traffic reuses query shapes — so an LRU keyed on the raw payload converts
repeats into a dict hit.

The cache is deliberately *not* shared across processes: each worker owns
its own (workers would otherwise serialize on a lock), and
:class:`CachedNormalizer` drops its entries when pickled so forked/spawned
workers start with an empty, correctly sized cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.normalize import Normalizer
from repro.obs.registry import get_registry

# CachedNormalizer's miss marker; never visible to callers.
_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """Cache effectiveness counters.

    Attributes:
        hits: lookups served from the cache.
        misses: lookups that fell through to the computation.
        size: current entry count.
        maxsize: capacity.
    """

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache:
    """A small, explicit LRU map (no ``functools`` so instances pickle).

    ``functools.lru_cache`` on a bound method pins the instance and does
    not survive pickling; this version is a plain object with inspectable
    counters, which the benchmarks report.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    _MISSING = object()

    def get(self, key: Any, default: Any = None) -> Any:
        """Value for *key*, or *default* on a miss (counters updated).

        ``None`` and other falsy values are legal cached values, not miss
        markers: a caller that must tell a stored-``None`` hit apart from
        a miss passes its own private sentinel as *default* and compares
        with ``is``.
        """
        value = self._entries.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert or refresh *key*, evicting the least-recently-used.

        With ``maxsize=0`` the cache holds nothing: ``put`` is a no-op
        and every ``get`` is a miss — the disabled-but-counting limit of
        the capacity spectrum, so callers can keep one code path.
        """
        if self.maxsize == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> CacheStats:
        """Current :class:`CacheStats` snapshot."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            maxsize=self.maxsize,
        )


class CachedNormalizer:
    """A :class:`~repro.normalize.Normalizer` behind a payload-keyed LRU.

    Drop-in: it is callable like a ``Normalizer`` and exposes ``names()``,
    so a ``SignatureSet`` or ``FeatureExtractor`` can hold one transparently.
    Correctness is free — normalization is a pure function of the payload,
    so a cached result is always identical to a recomputed one.
    ``maxsize=0`` degrades to a counting pass-through: nothing is
    retained, every call recomputes and registers as a miss.
    """

    def __init__(
        self,
        normalizer: Normalizer | None = None,
        *,
        maxsize: int = 4096,
    ) -> None:
        # Unwrap so stacking CachedNormalizer(CachedNormalizer(n)) cannot
        # build a chain of caches.
        if isinstance(normalizer, CachedNormalizer):
            normalizer = normalizer.normalizer
        self.normalizer = normalizer if normalizer is not None else Normalizer()
        self.cache = LruCache(maxsize=maxsize)
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        """Resolve the process-wide cache counters once.

        Workers reconstructed via pickle re-bind against *their*
        process's registry, so each process accumulates its own totals.
        """
        registry = get_registry()
        self._hits_counter = registry.counter(
            "repro_normalize_cache_hits_total",
            "Normalizations served from the payload LRU.",
        )
        self._misses_counter = registry.counter(
            "repro_normalize_cache_misses_total",
            "Normalizations that fell through to the transform chain.",
        )

    def __call__(self, text: str) -> str:
        # A sentinel default distinguishes a hit whose cached value is
        # the empty string (or any falsy normalization) from a miss.
        cached = self.cache.get(text, _MISS)
        if cached is not _MISS:
            self._hits_counter.inc()
            return cached
        normalized = self.normalizer(text)
        self.cache.put(text, normalized)
        self._misses_counter.inc()
        return normalized

    def names(self) -> list[str]:
        """Names of the wrapped transformations, in order."""
        return self.normalizer.names()

    def stats(self) -> CacheStats:
        """Cache counters (per-process; workers each keep their own)."""
        return self.cache.stats()

    def __getstate__(self) -> dict:
        # Ship configuration, not contents: a worker's cache starts empty.
        return {
            "normalizer": self.normalizer,
            "maxsize": self.cache.maxsize,
        }

    def __setstate__(self, state: dict) -> None:
        self.normalizer = state["normalizer"]
        self.cache = LruCache(maxsize=state["maxsize"])
        self._bind_instruments()
