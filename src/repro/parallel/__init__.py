"""Batch / multiprocess execution substrate.

Experiment 4 names signature matching "completely parallelizable" (Bro's
cluster mode); the same argument applies to phase-2 feature extraction,
where every sample's count vector is independent of every other's.  This
package supplies the shared machinery:

- :mod:`repro.parallel.chunking` — deterministic chunk planning and
  round-robin worker assignment.
- :mod:`repro.parallel.cache` — an LRU cache and the payload-keyed
  :class:`CachedNormalizer` used on every batch hot path.
- :mod:`repro.parallel.timing` — ``perf_counter`` overhead calibration so
  per-item instrumentation does not bias reported speedups.
- :mod:`repro.parallel.extract` — chunked multiprocess
  ``FeatureExtractor.extract_many`` fan-out with per-worker compiled
  pattern catalogs.
- :mod:`repro.parallel.batch` — batched detector runs
  (``SignatureEngine.run_batch``) that normalize once and evaluate all
  signatures against the shared normalized form.

Processes, not threads: the matchers are pure-Python ``re`` loops, so the
GIL serializes any thread pool; ``fork``-started worker processes each
hold their own compiled catalog and scale with cores.
"""

from repro.parallel.batch import BatchMatchBench, bench_batch_matching, run_batch
from repro.parallel.cache import CachedNormalizer, CacheStats, LruCache
from repro.parallel.chunking import assign_round_robin, chunk_spans, plan_chunks
from repro.parallel.extract import (
    ExtractionBench,
    ParallelFeatureExtractor,
    bench_batch_extraction,
)
from repro.parallel.timing import timer_overhead

__all__ = [
    "plan_chunks",
    "chunk_spans",
    "assign_round_robin",
    "LruCache",
    "CacheStats",
    "CachedNormalizer",
    "timer_overhead",
    "ParallelFeatureExtractor",
    "ExtractionBench",
    "bench_batch_extraction",
    "run_batch",
    "BatchMatchBench",
    "bench_batch_matching",
]
