"""Promotion gate: decide candidate vs. incumbent from measured deltas.

The gate is deliberately dumb — every input is something the shadow
stage *measured* (TPR on labeled fresh attacks, FPR on benign replay,
live-path divergences) or something computed structurally from the two
signature sets (per-signature churn).  No heuristics, no model-of-the-
model: a candidate promotes iff it clears every budget, and a rejection
names each budget it blew in a machine-readable reason list, so the
history manifest explains *why* without replaying the round.

Checks, in reason order:

- ``conformance`` — the shadow pass saw live verdicts diverge from the
  pre-stage baseline.  Staging must never perturb serving; if it did,
  nothing else about the round can be trusted.
- ``fpr_budget`` — the candidate's alert rate on benign replay exceeds
  the absolute budget.  pSigene's headline trade (90.52% detection at
  0.037% FP, Table VII) only holds if regeneration cannot quietly spend
  more false positives than the operator agreed to.
- ``tpr_regression`` — the candidate detects *fewer* of the fresh
  attacks than the incumbent, beyond tolerance.  A refresh that loses
  ground on exactly the traffic that motivated it is worse than no-op.
- ``churn`` — the fraction of incumbent signatures changed, added, or
  removed exceeds the cap.  Large churn is not forbidden forever — the
  operator can raise the cap for a planned re-bicluster — but it never
  rides in silently on a routine warm refresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.canary.shadow import ShadowReport
from repro.core.signature import SignatureSet

__all__ = [
    "ChurnReport",
    "GateDecision",
    "GatePolicy",
    "SignatureChurn",
    "evaluate_gate",
    "signature_churn",
]

#: Θ movement below this L2 norm counts as "unchanged" — refits of an
#: already-converged model jitter at machine precision.
THETA_EPSILON = 1e-9


@dataclass(frozen=True)
class GatePolicy:
    """Budgets a candidate must clear to promote.

    Attributes:
        fpr_budget: maximum candidate alert rate on benign replay
            (absolute, not a delta — the budget is an operator promise).
        tpr_tolerance: detection regression allowed on fresh attacks
            before ``tpr_regression`` fires (0.0 = any loss rejects).
        max_churn_fraction: maximum fraction of signatures changed,
            added, or removed relative to the incumbent set size.
        require_zero_divergences: reject when the shadow pass saw the
            live path diverge from its pre-stage baseline.
    """

    fpr_budget: float = 0.01
    tpr_tolerance: float = 0.0
    max_churn_fraction: float = 1.0
    require_zero_divergences: bool = True

    def to_dict(self) -> dict:
        """JSON-ready form for round records."""
        return {
            "fpr_budget": self.fpr_budget,
            "tpr_tolerance": self.tpr_tolerance,
            "max_churn_fraction": self.max_churn_fraction,
            "require_zero_divergences": self.require_zero_divergences,
        }


@dataclass(frozen=True)
class SignatureChurn:
    """How one signature moved between incumbent and candidate.

    Attributes:
        bicluster_index: paper-style 1-based signature number.
        status: ``unchanged``, ``changed``, ``added``, or ``removed``.
        theta_delta: L2 norm of the Θ movement, when both sides exist
            and share a feature dimension; None otherwise (a re-bicluster
            reshapes feature subsets, making Θ vectors incomparable).
        threshold_delta: candidate threshold minus incumbent threshold,
            when both sides exist.
    """

    bicluster_index: int
    status: str
    theta_delta: float | None = None
    threshold_delta: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready form (one churn entry in the gate block)."""
        return {
            "bicluster_index": self.bicluster_index,
            "status": self.status,
            "theta_delta": (
                None if self.theta_delta is None
                else round(self.theta_delta, 9)
            ),
            "threshold_delta": (
                None if self.threshold_delta is None
                else round(self.threshold_delta, 9)
            ),
        }


@dataclass(frozen=True)
class ChurnReport:
    """Per-signature diff of the candidate against the incumbent."""

    entries: list[SignatureChurn] = field(default_factory=list)
    incumbent_size: int = 0
    candidate_size: int = 0

    def _count(self, status: str) -> int:
        return sum(1 for e in self.entries if e.status == status)

    @property
    def n_changed(self) -> int:
        """Signatures present on both sides whose Θ or threshold moved."""
        return self._count("changed")

    @property
    def n_added(self) -> int:
        """Signatures only the candidate has."""
        return self._count("added")

    @property
    def n_removed(self) -> int:
        """Incumbent signatures the candidate dropped."""
        return self._count("removed")

    @property
    def churn_fraction(self) -> float:
        """(changed + added + removed) / incumbent set size."""
        if not self.incumbent_size:
            return 1.0 if (self.n_added or self.n_removed) else 0.0
        return (
            self.n_changed + self.n_added + self.n_removed
        ) / self.incumbent_size

    def to_dict(self) -> dict:
        """JSON-ready form for round records."""
        return {
            "incumbent_size": self.incumbent_size,
            "candidate_size": self.candidate_size,
            "changed": self.n_changed,
            "added": self.n_added,
            "removed": self.n_removed,
            "churn_fraction": round(self.churn_fraction, 6),
            "entries": [e.to_dict() for e in self.entries],
        }


def signature_churn(
    incumbent: SignatureSet, candidate: SignatureSet
) -> ChurnReport:
    """Diff *candidate* against *incumbent*, matched by bicluster index.

    A warm refresh keeps indices and feature subsets stable, so matched
    signatures get a real Θ L2 delta.  A re-bicluster may renumber and
    reshape everything; signatures whose feature dimensions no longer
    line up report ``theta_delta=None`` but still count as changed when
    their thresholds or dimensions differ.
    """
    old = {s.bicluster_index: s for s in incumbent.signatures}
    new = {s.bicluster_index: s for s in candidate.signatures}
    entries: list[SignatureChurn] = []
    for index in sorted(old.keys() | new.keys()):
        a, b = old.get(index), new.get(index)
        if a is None:
            entries.append(SignatureChurn(index, "added"))
            continue
        if b is None:
            entries.append(SignatureChurn(index, "removed"))
            continue
        theta_a = np.asarray(a.model.theta, dtype=np.float64)
        theta_b = np.asarray(b.model.theta, dtype=np.float64)
        threshold_delta = float(b.threshold - a.threshold)
        if theta_a.shape == theta_b.shape:
            theta_delta = float(np.linalg.norm(theta_b - theta_a))
            moved = (
                theta_delta > THETA_EPSILON
                or abs(threshold_delta) > THETA_EPSILON
            )
            entries.append(SignatureChurn(
                index,
                "changed" if moved else "unchanged",
                theta_delta=theta_delta,
                threshold_delta=threshold_delta,
            ))
        else:
            entries.append(SignatureChurn(
                index, "changed", threshold_delta=threshold_delta
            ))
    return ChurnReport(
        entries=entries,
        incumbent_size=len(incumbent.signatures),
        candidate_size=len(candidate.signatures),
    )


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict on one round.

    Attributes:
        promoted: True iff every check cleared.
        reasons: machine-readable rejection reasons, empty on promote —
            any of ``conformance``, ``fpr_budget``, ``tpr_regression``,
            ``churn``.
        shadow: the measured deltas the decision rests on.
        churn: the structural diff the decision rests on.
        policy: the budgets in force.
    """

    promoted: bool
    reasons: list[str]
    shadow: ShadowReport
    churn: ChurnReport
    policy: GatePolicy

    def to_dict(self) -> dict:
        """JSON-ready form (one history line's ``gate`` block)."""
        return {
            "promoted": self.promoted,
            "reasons": list(self.reasons),
            "shadow": self.shadow.to_dict(),
            "churn": self.churn.to_dict(),
            "policy": self.policy.to_dict(),
        }


def evaluate_gate(
    shadow: ShadowReport,
    churn: ChurnReport,
    policy: GatePolicy | None = None,
) -> GateDecision:
    """Apply *policy* to the measured round; collect every failed check.

    All checks always run — a rejection record naming every blown budget
    is worth more to the operator than the first one found.
    """
    policy = policy or GatePolicy()
    reasons: list[str] = []
    if policy.require_zero_divergences and shadow.divergences:
        reasons.append("conformance")
    if shadow.candidate_fpr > policy.fpr_budget:
        reasons.append("fpr_budget")
    if shadow.tpr_delta < -policy.tpr_tolerance:
        reasons.append("tpr_regression")
    if churn.churn_fraction > policy.max_churn_fraction:
        reasons.append("churn")
    return GateDecision(
        promoted=not reasons,
        reasons=reasons,
        shadow=shadow,
        churn=churn,
        policy=policy,
    )
