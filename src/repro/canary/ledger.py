"""Versioned corpus ledger: the canary loop's ingestion stage.

Every retraining decision the loop makes is only as trustworthy as its
record of *what* it trained on.  The ledger is that record: each ingest
call becomes an immutable batch with a content hash (SHA-256 over the
sorted payload digests, so batch identity is order-independent), a
monotonically increasing ledger version, and added/duplicate counts —
the same artifact-discipline a model-serving stack keeps for training
data snapshots.

Payloads are deduplicated per kind across the ledger's whole lifetime:
a scanner replaying the same probe every round grows the pending set
once, not every round.  Pending samples accumulate across *rejected*
rounds (the next candidate trains on everything observed since the last
promotion) and are consumed on promotion.

With a ``path`` the ledger also appends each batch as a JSON line, so a
restarted process can :meth:`CorpusLedger.load` the exact corpus state
back — content hashes included, which makes tampering visible.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterable

__all__ = ["CorpusLedger", "IngestBatch", "LedgerError"]

#: Kinds a ledger tracks; attacks feed refresh, benign feeds the FPR gate.
KINDS = ("attack", "benign")


class LedgerError(ValueError):
    """Raised on invalid ingests or a corrupt persisted ledger."""


def payload_digest(payload: str) -> str:
    """Stable content hash of one payload (SHA-256 hex)."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def batch_digest(digests: Iterable[str]) -> str:
    """Order-independent content hash of a batch of payload digests."""
    joined = "\n".join(sorted(digests)).encode("ascii")
    return hashlib.sha256(joined).hexdigest()


@dataclass(frozen=True)
class IngestBatch:
    """One immutable ingestion record.

    Attributes:
        version: ledger version this batch produced (1-based, monotonic).
        kind: ``attack`` or ``benign``.
        source: provenance string (``corpus:union-extract``,
            ``scanner:sqlmap``, ``operator``, ...).
        offered: payloads offered to this ingest call.
        added: payloads new to the ledger (survive dedup).
        duplicates: payloads already known (dropped).
        content_hash: order-independent SHA-256 over the *added*
            payload digests — the batch's identity.
    """

    version: int
    kind: str
    source: str
    offered: int
    added: int
    duplicates: int
    content_hash: str

    def to_dict(self) -> dict:
        """JSON-ready form (one history/journal line)."""
        return {
            "version": self.version,
            "kind": self.kind,
            "source": self.source,
            "offered": self.offered,
            "added": self.added,
            "duplicates": self.duplicates,
            "content_hash": self.content_hash,
        }


class CorpusLedger:
    """Content-addressed, versioned store of observed traffic.

    Args:
        path: optional JSONL journal; every batch (with its payloads) is
            appended so :meth:`load` can reconstruct the ledger.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.version = 0
        self.batches: list[IngestBatch] = []
        self._seen: dict[str, set[str]] = {kind: set() for kind in KINDS}
        self._pending: dict[str, list[str]] = {kind: [] for kind in KINDS}
        self._consumed: dict[str, int] = {kind: 0 for kind in KINDS}

    # -- ingestion -----------------------------------------------------

    def ingest(
        self, payloads: Iterable[str], *, kind: str, source: str
    ) -> IngestBatch:
        """Fold *payloads* into the ledger as one versioned batch.

        Raises:
            LedgerError: unknown ``kind`` or an empty offered batch
                (an empty ingest would mint a version that recorded
                nothing — almost certainly a caller bug).
        """
        if kind not in KINDS:
            raise LedgerError(
                f"unknown ledger kind {kind!r}; expected one of {KINDS}"
            )
        offered = list(payloads)
        if not offered:
            raise LedgerError(
                f"refusing to ingest an empty {kind} batch from {source!r}"
            )
        seen = self._seen[kind]
        added: list[str] = []
        added_digests: list[str] = []
        for payload in offered:
            digest = payload_digest(payload)
            if digest in seen:
                continue
            seen.add(digest)
            added.append(payload)
            added_digests.append(digest)
        self.version += 1
        batch = IngestBatch(
            version=self.version,
            kind=kind,
            source=source,
            offered=len(offered),
            added=len(added),
            duplicates=len(offered) - len(added),
            content_hash=batch_digest(added_digests),
        )
        self.batches.append(batch)
        self._pending[kind].extend(added)
        if self.path is not None:
            self._journal(batch, added)
        return batch

    def _journal(self, batch: IngestBatch, payloads: list[str]) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(
                {**batch.to_dict(), "payloads": payloads}
            ) + "\n")

    # -- consumption ---------------------------------------------------

    def pending(self, kind: str) -> list[str]:
        """Samples ingested since the last promotion (a copy)."""
        if kind not in KINDS:
            raise LedgerError(f"unknown ledger kind {kind!r}")
        return list(self._pending[kind])

    def pending_counts(self) -> dict[str, int]:
        """Pending sample count per kind."""
        return {kind: len(queue) for kind, queue in self._pending.items()}

    def mark_consumed(self) -> dict[str, int]:
        """Clear every pending queue (called on promotion).

        Returns the per-kind counts that were consumed.  Rejected rounds
        do *not* consume: their samples stay pending so the next
        candidate trains on everything observed since the last promote.
        """
        counts = self.pending_counts()
        for kind in KINDS:
            self._consumed[kind] += len(self._pending[kind])
            self._pending[kind] = []
        if self.path is not None and any(counts.values()):
            with open(self.path, "a") as handle:
                handle.write(json.dumps(
                    {"event": "consume", "counts": counts}
                ) + "\n")
        return counts

    @property
    def consumed_counts(self) -> dict[str, int]:
        """Total samples consumed by promotions, per kind."""
        return dict(self._consumed)

    # -- persistence ---------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "CorpusLedger":
        """Reconstruct a ledger from its JSONL journal.

        Raises:
            LedgerError: malformed journal lines or a recorded batch
                whose content hash does not match its payloads.
        """
        ledger = cls(path=None)
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(
                        f"{path}:{number}: invalid JSON: {exc}"
                    ) from exc
                if record.get("event") == "consume":
                    for kind, count in record.get("counts", {}).items():
                        if kind in KINDS:
                            ledger._consumed[kind] += int(count)
                            ledger._pending[kind] = []
                    continue
                payloads = record.get("payloads")
                kind = record.get("kind")
                if kind not in KINDS or not isinstance(payloads, list):
                    raise LedgerError(
                        f"{path}:{number}: malformed ledger record"
                    )
                digests = [payload_digest(p) for p in payloads]
                if batch_digest(digests) != record.get("content_hash"):
                    raise LedgerError(
                        f"{path}:{number}: content hash mismatch — the "
                        "journal does not match its recorded payloads"
                    )
                ledger.version += 1
                batch = IngestBatch(
                    version=int(record["version"]),
                    kind=kind,
                    source=str(record.get("source", "")),
                    offered=int(record["offered"]),
                    added=int(record["added"]),
                    duplicates=int(record["duplicates"]),
                    content_hash=str(record["content_hash"]),
                )
                if batch.version != ledger.version:
                    raise LedgerError(
                        f"{path}:{number}: version {batch.version} out of "
                        f"order (expected {ledger.version})"
                    )
                ledger.batches.append(batch)
                ledger._seen[kind].update(digests)
                ledger._pending[kind].extend(payloads)
        ledger.path = path
        return ledger
