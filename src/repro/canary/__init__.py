"""Closed-loop continual learning: shadow-score and gate-promote signatures.

pSigene's core promise is that signatures are *regenerated* as the
attack corpus evolves (Section I: "the current approach to this process
is manual"), and the ``ext_drift`` bench shows detection decaying when
nobody regenerates them.  This package closes the loop — "retrain by
hand" becomes "retrain, shadow, gate, promote":

1. **Ingest** (:mod:`repro.canary.ledger`) — fresh attack/benign samples
   fold into a content-hashed, versioned corpus ledger.
2. **Refresh** (:mod:`repro.canary.refresh`) — a candidate signature set
   is produced from the pending samples: the warm Θ-only
   :func:`~repro.core.incremental.incremental_update` path normally, a
   full re-bicluster + LR retrain when the measured drift of the fresh
   traffic exceeds a threshold.
3. **Shadow** (:mod:`repro.canary.shadow`) — the candidate is staged
   through :meth:`~repro.serve.store.SignatureStore.stage_json` (never
   published) and mirrored traffic is scored against it while the
   incumbent keeps answering; a conformance-style differential pass
   proves the live verdicts were untouched.
4. **Gate** (:mod:`repro.canary.gate`) — candidate-vs-incumbent deltas
   (TPR on fresh attacks, an FPR budget on benign replay, per-signature
   churn) decide promotion; a rejection is a structured record, not a
   silent drop.
5. **Promote** (:mod:`repro.canary.loop`) — only a gated candidate
   commits, via the store's two-phase ``commit_staged`` or the fleet
   supervisor's atomic two-phase reload; every round lands in a
   promotion-history manifest under ``runs/``.

``repro canary run|status|history`` drives the loop from the CLI; the
whole round is traced (``canary.round`` spans) and counted
(``repro_canary_*`` metrics).  See DESIGN.md §16.
"""

from repro.canary.gate import (
    ChurnReport,
    GateDecision,
    GatePolicy,
    SignatureChurn,
    evaluate_gate,
    signature_churn,
)
from repro.canary.history import (
    HISTORY_SCHEMA,
    HistoryError,
    append_round,
    history_path,
    read_history,
    validate_round,
)
from repro.canary.ledger import CorpusLedger, IngestBatch, LedgerError
from repro.canary.loop import (
    CanaryConfig,
    CanaryLoop,
    CanaryRound,
    TrainingState,
    fresh_attack_batch,
    fresh_benign_batch,
)
from repro.canary.refresh import (
    DriftSignal,
    RefreshOutcome,
    measure_drift,
    rebicluster_update,
    refresh_candidate,
)
from repro.canary.shadow import (
    ShadowReport,
    shadow_with_fleet,
    shadow_with_store,
)

__all__ = [
    "CanaryConfig",
    "CanaryLoop",
    "CanaryRound",
    "ChurnReport",
    "CorpusLedger",
    "DriftSignal",
    "GateDecision",
    "GatePolicy",
    "HISTORY_SCHEMA",
    "HistoryError",
    "IngestBatch",
    "LedgerError",
    "RefreshOutcome",
    "ShadowReport",
    "SignatureChurn",
    "TrainingState",
    "append_round",
    "evaluate_gate",
    "fresh_attack_batch",
    "fresh_benign_batch",
    "history_path",
    "measure_drift",
    "read_history",
    "rebicluster_update",
    "refresh_candidate",
    "shadow_with_fleet",
    "shadow_with_store",
    "signature_churn",
    "validate_round",
]
