"""The closed loop: ingest → refresh → shadow → gate → promote.

One :meth:`CanaryLoop.run_round` call is one complete continual-learning
round against a single-process :class:`~repro.serve.store.SignatureStore`;
:meth:`CanaryLoop.run_round_fleet` is the same round against a live
:class:`~repro.serve.supervisor.FleetSupervisor`, where the shadow pass
rides the real data plane and a promotion commits through the fleet's
atomic two-phase reload.

The loop owns three invariants the stages cannot each enforce alone:

- **Rejection is cheap and safe.**  An aborted round leaves the
  incumbent signature set, the store version, the training state, *and*
  the ledger's pending queues untouched — the next round retrains on
  everything observed since the last promotion.
- **Promotion is transactional.**  Training state, store generation,
  and ledger consumption advance together, only after the gate clears
  and the staged candidate commits.
- **Every round is recorded.**  A ``canary.round`` span tree, the
  ``repro_canary_*`` counters, and one line in the promotion-history
  manifest — promoted or rejected alike.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.canary.gate import (
    GateDecision,
    GatePolicy,
    evaluate_gate,
    signature_churn,
)
from repro.canary.history import HISTORY_SCHEMA, append_round
from repro.canary.ledger import CorpusLedger
from repro.canary.refresh import refresh_candidate
from repro.canary.shadow import shadow_with_fleet, shadow_with_store
from repro.conformance.harness import default_training_config
from repro.core.pipeline import PipelineResult, PSigenePipeline
from repro.core.serialize import signature_set_to_json
from repro.core.signature import SignatureSet
from repro.corpus.benign import BenignTrafficGenerator
from repro.corpus.grammar import CorpusGenerator
from repro.eval.drift import drifted_families
from repro.obs import trace as obs_trace
from repro.obs.registry import get_registry
from repro.serve.store import SignatureStore

__all__ = [
    "CanaryConfig",
    "CanaryLoop",
    "CanaryRound",
    "TrainingState",
    "fresh_attack_batch",
    "fresh_benign_batch",
]


def fresh_attack_batch(
    count: int, *, shift: float = 3.0, seed: int = 0
) -> list[str]:
    """Draw *count* attacks from a drifted family mix.

    The mix comes from :func:`repro.eval.drift.drifted_families` — the
    same re-tilt the drift study uses — so the canary loop's "new
    attacks appeared" stimulus is the one the paper's Section I
    motivates retraining with.

    Grammar mutators emit literal newlines inside payloads, but the
    fleet data plane is line-framed (one payload per line — the
    :meth:`~repro.http.request.HttpRequest.payload` contract), so
    embedded line breaks are collapsed to spaces here.  SQL tokenizers
    treat all whitespace alike, and sanitizing at ingestion means the
    in-process and on-the-wire shadow passes score identical strings.
    """
    families = drifted_families(shift=shift, seed=seed)
    generator = CorpusGenerator(seed=seed + 1000, families=families)
    return [
        sample.payload.replace("\r", " ").replace("\n", " ")
        for sample in generator.generate(count)
    ]


def fresh_benign_batch(count: int, *, seed: int = 0) -> list[str]:
    """Draw *count* benign payloads for FPR replay.

    Static fetches contribute empty payloads — that is the real traffic
    mix, and the FPR denominator should reflect it.
    """
    generator = BenignTrafficGenerator(seed=seed + 3)
    return [request.flat_payload() for request in generator.trace(count).requests]


@dataclass
class TrainingState:
    """The incumbent pipeline and its training result.

    The loop mutates ``result`` only on promotion — the candidate's
    refreshed result is adopted exactly when its signature set becomes
    the live generation, so training state and serving state never
    disagree about what the incumbent is.
    """

    pipeline: PSigenePipeline
    result: PipelineResult

    @classmethod
    def train(cls, seed: int = 2012) -> "TrainingState":
        """Train the canonical small pipeline (the conformance config)."""
        pipeline = PSigenePipeline(default_training_config(seed))
        return cls(pipeline=pipeline, result=pipeline.run())

    @property
    def signature_set(self) -> SignatureSet:
        """The incumbent signature set."""
        return self.result.signature_set


@dataclass(frozen=True)
class CanaryConfig:
    """Knobs for one canary loop.

    Attributes:
        fresh_attacks: attacks drawn per round when none are supplied.
        benign_replay: benign payloads replayed per round for the FPR
            budget check.
        shift: drift magnitude of the generated attack mix.
        seed: base RNG seed; round ``k`` draws with ``seed + k`` so
            rounds differ deterministically.
        drift_threshold: out-of-cluster rate above which refresh
            escalates from the warm path to a full re-bicluster.
        refresh_strategy: ``auto``, ``warm``, or ``rebicluster``.
        policy: promotion-gate budgets.
        runs_dir: directory for the promotion-history manifest; None
            disables history.
        source: provenance stamped on ledger batches and staged
            candidates.
    """

    fresh_attacks: int = 200
    benign_replay: int = 400
    shift: float = 3.0
    seed: int = 0
    drift_threshold: float = 0.5
    refresh_strategy: str = "auto"
    policy: GatePolicy = field(default_factory=GatePolicy)
    runs_dir: str | None = "runs"
    source: str = "canary"


@dataclass(frozen=True)
class CanaryRound:
    """Everything one round decided and measured.

    Attributes:
        index: 0-based round number within this loop.
        outcome: ``promoted`` or ``rejected``.
        mode: ``store`` or ``fleet``.
        strategy: refresh strategy actually used.
        generation_before / generation_after: live store generation
            around the round (equal on rejection).
        ledger_version: ledger version after this round's ingests.
        ingested: per-kind sample counts added this round.
        drift: the measured drift signal that picked the strategy.
        decision: the full gate decision (shadow deltas, churn, policy,
            reasons).
        stage_wall_s: wall seconds per stage
            (``ingest``/``refresh``/``shadow``/``gate``/``promote``).
    """

    index: int
    outcome: str
    mode: str
    strategy: str
    generation_before: int
    generation_after: int
    ledger_version: int
    ingested: dict[str, int]
    drift: dict
    decision: GateDecision
    stage_wall_s: dict[str, float]

    @property
    def promoted(self) -> bool:
        """True iff this round published its candidate."""
        return self.outcome == "promoted"

    def to_dict(self) -> dict:
        """The promotion-history record (schema-stamped)."""
        return {
            "schema": HISTORY_SCHEMA,
            "round": self.index,
            "outcome": self.outcome,
            "mode": self.mode,
            "strategy": self.strategy,
            "generation_before": self.generation_before,
            "generation_after": self.generation_after,
            "ledger_version": self.ledger_version,
            "ingested": dict(self.ingested),
            "reasons": list(self.decision.reasons),
            "drift": dict(self.drift),
            "gate": self.decision.to_dict(),
            "stage_wall_s": {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_wall_s.items()
            },
        }


class CanaryLoop:
    """Drives complete rounds against a store or a fleet.

    Args:
        state: incumbent training state (pipeline + result).  The
            mounted store's detector should serve ``state.signature_set``.
        store: the serving store rounds run against.
        config: loop knobs; defaults throughout.
        ledger: corpus ledger; a fresh in-memory one by default.
    """

    def __init__(
        self,
        state: TrainingState,
        store: SignatureStore,
        *,
        config: CanaryConfig | None = None,
        ledger: CorpusLedger | None = None,
    ) -> None:
        self.state = state
        self.store = store
        self.config = config or CanaryConfig()
        self.ledger = ledger or CorpusLedger()
        self.rounds: list[CanaryRound] = []
        registry = get_registry()
        self._rounds_total = registry.counter(
            "repro_canary_rounds_total",
            "Canary rounds completed, promoted or rejected.",
        )
        self._promotions = registry.counter(
            "repro_canary_promotions_total",
            "Canary rounds whose candidate was committed.",
        )
        self._rejections = registry.counter(
            "repro_canary_rejections_total",
            "Canary rounds whose candidate was aborted.",
        )
        self._ingested = registry.counter(
            "repro_canary_ingested_samples_total",
            "Samples added to the corpus ledger by canary ingestion.",
        )
        self._divergences = registry.counter(
            "repro_canary_shadow_divergences_total",
            "Live-path divergences observed during shadow scoring.",
        )
        self._round_seconds = registry.histogram(
            "repro_canary_round_seconds",
            "Wall time of one complete canary round.",
        )

    # -- stages --------------------------------------------------------

    def _ingest(
        self, attacks: list[str] | None, benign: list[str] | None
    ) -> dict[str, int]:
        """Fold this round's traffic into the ledger.

        When the caller supplies no traffic, a deterministic fresh batch
        is drawn (drifted attacks + benign replay) so ``repro canary
        run`` works without an external feed.
        """
        round_seed = self.config.seed + len(self.rounds)
        if attacks is None:
            attacks = fresh_attack_batch(
                self.config.fresh_attacks,
                shift=self.config.shift,
                seed=round_seed,
            )
        if benign is None:
            benign = fresh_benign_batch(
                self.config.benign_replay, seed=round_seed
            )
        ingested = {"attack": 0, "benign": 0}
        if attacks:
            batch = self.ledger.ingest(
                attacks, kind="attack", source=self.config.source
            )
            ingested["attack"] = batch.added
        if benign:
            batch = self.ledger.ingest(
                benign, kind="benign", source=self.config.source
            )
            ingested["benign"] = batch.added
        self._ingested.inc(sum(ingested.values()))
        return ingested

    def _refresh(self):
        return refresh_candidate(
            self.state.pipeline,
            self.state.result,
            self.ledger.pending("attack"),
            drift_threshold=self.config.drift_threshold,
            strategy=self.config.refresh_strategy,
        )

    def _finish(
        self,
        *,
        mode: str,
        strategy: str,
        generation_before: int,
        generation_after: int,
        ingested: dict[str, int],
        drift: dict,
        decision: GateDecision,
        stage_wall_s: dict[str, float],
    ) -> CanaryRound:
        outcome = "promoted" if decision.promoted else "rejected"
        completed = CanaryRound(
            index=len(self.rounds),
            outcome=outcome,
            mode=mode,
            strategy=strategy,
            generation_before=generation_before,
            generation_after=generation_after,
            ledger_version=self.ledger.version,
            ingested=ingested,
            drift=drift,
            decision=decision,
            stage_wall_s=stage_wall_s,
        )
        self.rounds.append(completed)
        self._rounds_total.inc()
        (self._promotions if completed.promoted else self._rejections).inc()
        self._divergences.inc(len(decision.shadow.divergences))
        self._round_seconds.observe(sum(stage_wall_s.values()))
        if self.config.runs_dir is not None:
            append_round(completed.to_dict(), runs_dir=self.config.runs_dir)
        return completed

    # -- complete rounds -----------------------------------------------

    def run_round(
        self,
        attacks: list[str] | None = None,
        benign: list[str] | None = None,
        *,
        sabotage: Callable[[SignatureSet], SignatureSet] | None = None,
    ) -> CanaryRound:
        """One complete round against the store (in-process shadow).

        Args:
            attacks: fresh attack payloads to ingest; generated when
                None.
            benign: benign payloads to ingest for FPR replay; generated
                when None.
            sabotage: test/CI hook applied to the candidate between
                refresh and shadow — e.g.
                ``lambda s: s.with_threshold(0.05)`` injects an FPR
                budget violation the gate must catch.
        """
        walls: dict[str, float] = {}
        generation_before = self.store.version
        with obs_trace.span("canary.round", mode="store"):
            with obs_trace.span("canary.ingest"):
                started = time.perf_counter()
                ingested = self._ingest(attacks, benign)
                walls["ingest"] = time.perf_counter() - started
            with obs_trace.span("canary.refresh"):
                started = time.perf_counter()
                outcome = self._refresh()
                candidate = outcome.candidate
                if sabotage is not None:
                    candidate = sabotage(candidate)
                candidate_json = signature_set_to_json(candidate)
                walls["refresh"] = time.perf_counter() - started
            generation = generation_before + 1
            with obs_trace.span("canary.shadow", generation=generation):
                started = time.perf_counter()
                shadow = shadow_with_store(
                    self.store,
                    candidate_json,
                    generation=generation,
                    attacks=self.ledger.pending("attack"),
                    benign=self.ledger.pending("benign"),
                    source=self.config.source,
                )
                walls["shadow"] = time.perf_counter() - started
            with obs_trace.span("canary.gate"):
                started = time.perf_counter()
                churn = signature_churn(self.state.signature_set, candidate)
                decision = evaluate_gate(shadow, churn, self.config.policy)
                walls["gate"] = time.perf_counter() - started
            with obs_trace.span(
                "canary.promote", promoted=decision.promoted
            ):
                started = time.perf_counter()
                if decision.promoted:
                    self.store.commit_staged(generation)
                    self.state.result = outcome.result
                    self.ledger.mark_consumed()
                else:
                    self.store.abort_staged(generation)
                walls["promote"] = time.perf_counter() - started
        return self._finish(
            mode="store",
            strategy=outcome.strategy,
            generation_before=generation_before,
            generation_after=self.store.version,
            ingested=ingested,
            drift=outcome.drift.to_dict(),
            decision=decision,
            stage_wall_s=walls,
        )

    async def run_round_fleet(
        self,
        supervisor,
        attacks: list[str] | None = None,
        benign: list[str] | None = None,
        *,
        sabotage: Callable[[SignatureSet], SignatureSet] | None = None,
    ) -> CanaryRound:
        """One complete round against a live fleet.

        The shadow pass mirrors traffic over the real shared data port;
        a promotion commits through
        :meth:`~repro.serve.supervisor.FleetSupervisor.reload_json` —
        the atomic two-phase fleet reload, which re-stages the shadowed
        generation (double-staging replaces cleanly) and flips every
        shard or none.

        The supervisor's reference store must be ``self.store``.
        """
        if supervisor.store is not self.store:
            raise ValueError(
                "the supervisor's reference store must be the loop's store"
            )
        walls: dict[str, float] = {}
        generation_before = self.store.version
        with obs_trace.span("canary.round", mode="fleet"):
            with obs_trace.span("canary.ingest"):
                started = time.perf_counter()
                ingested = self._ingest(attacks, benign)
                walls["ingest"] = time.perf_counter() - started
            with obs_trace.span("canary.refresh"):
                started = time.perf_counter()
                outcome = self._refresh()
                candidate = outcome.candidate
                if sabotage is not None:
                    candidate = sabotage(candidate)
                candidate_json = signature_set_to_json(candidate)
                walls["refresh"] = time.perf_counter() - started
            generation = generation_before + 1
            with obs_trace.span("canary.shadow", generation=generation):
                started = time.perf_counter()
                shadow = await shadow_with_fleet(
                    supervisor,
                    candidate_json,
                    generation=generation,
                    attacks=self.ledger.pending("attack"),
                    benign=self.ledger.pending("benign"),
                    source=self.config.source,
                )
                walls["shadow"] = time.perf_counter() - started
            with obs_trace.span("canary.gate"):
                started = time.perf_counter()
                churn = signature_churn(self.state.signature_set, candidate)
                decision = evaluate_gate(shadow, churn, self.config.policy)
                walls["gate"] = time.perf_counter() - started
            with obs_trace.span(
                "canary.promote", promoted=decision.promoted
            ):
                started = time.perf_counter()
                if decision.promoted:
                    await supervisor.reload_json(
                        candidate_json, source=self.config.source
                    )
                    self.state.result = outcome.result
                    self.ledger.mark_consumed()
                else:
                    self.store.abort_staged(generation)
                walls["promote"] = time.perf_counter() - started
        return self._finish(
            mode="fleet",
            strategy=outcome.strategy,
            generation_before=generation_before,
            generation_after=self.store.version,
            ingested=ingested,
            drift=outcome.drift.to_dict(),
            decision=decision,
            stage_wall_s=walls,
        )
