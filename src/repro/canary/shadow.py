"""Shadow stage: score the candidate behind the live set, touch nothing.

The candidate is *staged* — built and warmed through
:meth:`~repro.serve.store.SignatureStore.stage_json`, the same two-phase
entry the fleet reload protocol uses — but never published.  Mirrored
traffic is then scored twice: by the live (incumbent) path for real
verdicts, and by the staged candidate for shadow verdicts.  Two
guarantees fall out, both checked here rather than assumed:

- **The live path is untouched.**  Incumbent verdicts are captured
  *before* staging and diffed against the live verdicts observed after —
  a conformance-style differential pass (same
  :class:`~repro.conformance.verdict.Verdict` normal form, same
  :func:`~repro.conformance.verdict.diff_verdicts`) whose divergence
  list must be empty.  In fleet mode the post-stage verdicts travel the
  real data plane — ``SO_REUSEPORT`` balancing, admission queues, wire
  framing — so the pass covers everything a promotion would ship through.
- **The deltas are measured on labeled traffic.**  Mirrored payloads are
  fresh attacks (TPR) and benign replay (FPR), so the gate sees
  candidate-vs-incumbent deltas, not proxies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conformance.verdict import Divergence, Verdict, diff_verdicts
from repro.serve.store import SignatureStore, StoreError

__all__ = ["ShadowReport", "shadow_with_fleet", "shadow_with_store"]


@dataclass(frozen=True)
class ShadowReport:
    """What one shadow pass measured.

    Attributes:
        mode: ``store`` (in-process mirror) or ``fleet`` (live data
            plane).
        generation: the staged candidate's generation number.
        n_attacks: labeled fresh-attack payloads mirrored.
        n_benign: labeled benign payloads mirrored.
        incumbent_tpr / candidate_tpr: detection on the fresh attacks.
        incumbent_fpr / candidate_fpr: alert rate on the benign replay.
        verdict_flips: payloads where the candidate's alert bit differs
            from the incumbent's (the churn the gate is pricing).
        divergences: live-vs-baseline disagreements — non-empty means
            staging perturbed the serving path, which by itself must
            fail the gate.
    """

    mode: str
    generation: int
    n_attacks: int
    n_benign: int
    incumbent_tpr: float
    candidate_tpr: float
    incumbent_fpr: float
    candidate_fpr: float
    verdict_flips: int
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def tpr_delta(self) -> float:
        """Candidate minus incumbent detection on fresh attacks."""
        return self.candidate_tpr - self.incumbent_tpr

    @property
    def fpr_delta(self) -> float:
        """Candidate minus incumbent alert rate on benign replay."""
        return self.candidate_fpr - self.incumbent_fpr

    def to_dict(self) -> dict:
        """JSON-ready form for round records and benches."""
        return {
            "mode": self.mode,
            "generation": self.generation,
            "n_attacks": self.n_attacks,
            "n_benign": self.n_benign,
            "incumbent_tpr": round(self.incumbent_tpr, 6),
            "candidate_tpr": round(self.candidate_tpr, 6),
            "incumbent_fpr": round(self.incumbent_fpr, 6),
            "candidate_fpr": round(self.candidate_fpr, 6),
            "tpr_delta": round(self.tpr_delta, 6),
            "fpr_delta": round(self.fpr_delta, 6),
            "verdict_flips": self.verdict_flips,
            "divergences": len(self.divergences),
        }


def _alert_rate(verdicts: list[Verdict]) -> float:
    if not verdicts:
        return 0.0
    return sum(1 for v in verdicts if v.alert) / len(verdicts)


def _serial(detector, payloads: list[str]) -> list[Verdict]:
    return [Verdict.from_detection(detector.inspect(p)) for p in payloads]


def _build_report(
    *,
    mode: str,
    generation: int,
    n_attacks: int,
    n_benign: int,
    live: list[Verdict],
    shadow: list[Verdict],
    divergences: list[Divergence],
) -> ShadowReport:
    return ShadowReport(
        mode=mode,
        generation=generation,
        n_attacks=n_attacks,
        n_benign=n_benign,
        incumbent_tpr=_alert_rate(live[:n_attacks]),
        candidate_tpr=_alert_rate(shadow[:n_attacks]),
        incumbent_fpr=_alert_rate(live[n_attacks:]),
        candidate_fpr=_alert_rate(shadow[n_attacks:]),
        verdict_flips=sum(
            1 for a, b in zip(live, shadow) if a.alert != b.alert
        ),
        divergences=divergences,
    )


def _staged_detector(store: SignatureStore, generation: int):
    staged = store.get_staged(generation)
    if staged is None:
        raise StoreError(
            f"no staged candidate for generation {generation}; "
            "stage before shadow-scoring",
            reason="stage",
        )
    return staged.detector


def shadow_with_store(
    store: SignatureStore,
    candidate_json: str,
    *,
    generation: int,
    attacks: list[str],
    benign: list[str],
    source: str = "canary",
) -> ShadowReport:
    """Stage *candidate_json* on *store* and mirror traffic in-process.

    The incumbent's verdicts are captured before staging; after staging
    the published detector answers again and any disagreement becomes a
    divergence.  The staged candidate is left staged — the caller's gate
    decides between ``commit_staged`` and ``abort_staged``.

    Raises:
        StoreError: the candidate failed to parse, warm, or stage; the
            store is left exactly as it was.
    """
    payloads = list(attacks) + list(benign)
    baseline = _serial(store.current().detector, payloads)
    store.stage_json(candidate_json, generation=generation, source=source)
    live = _serial(store.current().detector, payloads)
    divergences = diff_verdicts(
        "incumbent-prestage", baseline, "incumbent-live", live, payloads
    )
    shadow = _serial(_staged_detector(store, generation), payloads)
    return _build_report(
        mode="store",
        generation=generation,
        n_attacks=len(attacks),
        n_benign=len(benign),
        live=live,
        shadow=shadow,
        divergences=divergences,
    )


async def shadow_with_fleet(
    supervisor,
    candidate_json: str,
    *,
    generation: int,
    attacks: list[str],
    benign: list[str],
    source: str = "canary",
    connections: int = 4,
    window: int = 32,
) -> ShadowReport:
    """Stage on the supervisor's reference store, mirror over the wire.

    The candidate is staged on the fleet's *reference* store only — no
    shard spends cycles until the gate decides to promote (a promotion
    re-stages fleet-wide through the two-phase reload; double-staging
    the same generation replaces cleanly).  Live verdicts travel the
    real shared data port, so the differential pass exercises kernel
    connection balancing, per-shard admission, and wire framing.

    Args:
        supervisor: a started :class:`~repro.serve.supervisor.FleetSupervisor`.

    Raises:
        StoreError: the candidate failed to parse, warm, or stage.
        ConformanceError: the fleet failed to answer a mirrored payload
            (shed or error under the sized queue bound — a serving
            defect, not a gate signal).
    """
    from repro.conformance.verdict import ConformanceError
    from repro.serve.loadgen import replay

    payloads = list(attacks) + list(benign)
    for index, payload in enumerate(payloads):
        if "\n" in payload or "\r" in payload:
            raise ValueError(
                f"mirrored payload {index} contains a line break; the "
                "fleet data plane is line-framed, so it would be split "
                "on the wire — sanitize at ingestion "
                "(fresh_attack_batch collapses breaks to spaces)"
            )
    store = supervisor.store
    baseline = _serial(store.current().detector, payloads)
    store.stage_json(candidate_json, generation=generation, source=source)
    host, port = supervisor.data_address
    responses, _latencies, _duration = await replay(
        host, port, payloads, connections=connections, window=window
    )
    live: list[Verdict] = []
    for index, response in enumerate(responses):
        if response is None or response.get("shed") or "error" in response:
            raise ConformanceError(
                f"fleet gave no verdict for mirrored payload {index}: "
                f"{response!r}"
            )
        live.append(Verdict(
            alert=bool(response.get("alert")),
            score=float(response.get("score", 0.0)),
            fired=tuple(int(s) for s in response.get("matched", [])),
        ))
    divergences = diff_verdicts(
        "incumbent-prestage", baseline, "fleet-live", live, payloads
    )
    shadow = _serial(_staged_detector(store, generation), payloads)
    return _build_report(
        mode="fleet",
        generation=generation,
        n_attacks=len(attacks),
        n_benign=len(benign),
        live=live,
        shadow=shadow,
        divergences=divergences,
    )
