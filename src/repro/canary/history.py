"""Promotion-history manifest: every round leaves an auditable record.

The canary loop's output is not just a (possibly) new signature set —
it is a decision, and decisions need provenance.  Each completed round
appends one JSON line to ``runs/canary/history.jsonl``: outcome,
rejection reasons, refresh strategy, drift signal, the full gate block
(shadow deltas, churn, policy), generation numbers before/after, and
per-stage wall times.  ``repro canary history`` reads it back;
``repro canary status`` summarizes the tail.

Records are validated on write *and* on read — a manifest that can be
appended to but not trusted is no manifest.  The schema is versioned so
a future shape change can migrate instead of guess.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "HISTORY_SCHEMA",
    "HistoryError",
    "append_round",
    "history_path",
    "read_history",
    "validate_round",
]

#: Manifest schema version stamped on every round record.
HISTORY_SCHEMA = 1

#: Keys every round record must carry.
_REQUIRED = (
    "schema",
    "round",
    "outcome",
    "strategy",
    "generation_before",
    "generation_after",
    "reasons",
    "gate",
    "stage_wall_s",
)

#: Outcomes a round may record.
_OUTCOMES = ("promoted", "rejected")


class HistoryError(ValueError):
    """Raised on an invalid round record or a corrupt manifest."""


def history_path(runs_dir: str = "runs") -> str:
    """The manifest path under *runs_dir* (``runs/canary/history.jsonl``)."""
    return os.path.join(runs_dir, "canary", "history.jsonl")


def validate_round(record: dict) -> None:
    """Check one round record's shape.

    Raises:
        HistoryError: a required key is missing, the schema version is
            unknown, the outcome is not ``promoted``/``rejected``, or a
            rejection carries no reasons (an unexplained rejection is a
            bug in the gate, not a record to keep).
    """
    if not isinstance(record, dict):
        raise HistoryError(f"round record must be a dict, got {type(record)}")
    missing = [key for key in _REQUIRED if key not in record]
    if missing:
        raise HistoryError(f"round record missing keys: {missing}")
    if record["schema"] != HISTORY_SCHEMA:
        raise HistoryError(
            f"unknown history schema {record['schema']!r} "
            f"(this build writes {HISTORY_SCHEMA})"
        )
    if record["outcome"] not in _OUTCOMES:
        raise HistoryError(
            f"outcome must be one of {_OUTCOMES}, got {record['outcome']!r}"
        )
    if record["outcome"] == "rejected" and not record["reasons"]:
        raise HistoryError("a rejected round must name its reasons")
    if record["outcome"] == "promoted" and record["reasons"]:
        raise HistoryError(
            "a promoted round must not carry rejection reasons"
        )


def append_round(record: dict, *, runs_dir: str = "runs") -> str:
    """Validate *record* and append it to the manifest.

    Returns the manifest path written to.
    """
    validate_round(record)
    path = history_path(runs_dir)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_history(runs_dir: str = "runs") -> list[dict]:
    """Load and validate every round in the manifest, oldest first.

    Returns an empty list when no manifest exists yet.

    Raises:
        HistoryError: a line is not valid JSON or fails round validation.
    """
    path = history_path(runs_dir)
    if not os.path.exists(path):
        return []
    rounds: list[dict] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HistoryError(
                    f"{path}:{number}: invalid JSON: {exc}"
                ) from exc
            try:
                validate_round(record)
            except HistoryError as exc:
                raise HistoryError(f"{path}:{number}: {exc}") from exc
            rounds.append(record)
    return rounds
