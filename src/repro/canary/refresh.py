"""Refresh stage: turn pending samples into a candidate signature set.

Two regeneration paths, picked by a measured drift signal:

- **warm** — the paper's incremental path
  (:func:`repro.core.incremental.incremental_update`, ``strategy="warm"``):
  cluster structure and per-signature feature subsets stay fixed, Θ is
  refit from the old optimum.  Cheap, and right as long as fresh attacks
  still land inside the trained biclusters.
- **rebicluster** — the full phase 2–4 pipeline (extraction → pruning →
  UPGMA biclustering → LR generalization) over the union of the original
  corpus and the pending samples.  Expensive, and necessary exactly when
  drift has pushed fresh traffic outside every bicluster's assignment
  radius — the regime the ``ext_drift`` bench shows warm updates cannot
  fully recover.

:func:`measure_drift` quantifies that regime the same way the pipeline
assigns rows (nearest-centroid distance in the biclusterer's transformed
space, against each bicluster's radius), so the trigger and the training
geometry can never disagree about what "outside" means.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.incremental import incremental_update
from repro.core.pipeline import PipelineResult, PSigenePipeline
from repro.core.signature import SignatureSet
from repro.corpus.grammar import AttackSample
from repro.features.extractor import FeatureExtractor

__all__ = [
    "DriftSignal",
    "RefreshOutcome",
    "measure_drift",
    "rebicluster_update",
    "refresh_candidate",
]

#: Radius slack shared with ``PSigenePipeline._extend_biclusters`` — a
#: row is "inside" a bicluster when its centroid distance is within
#: 1.05x the cluster's assignment radius.
RADIUS_SLACK = 1.05


@dataclass(frozen=True)
class DriftSignal:
    """How far fresh traffic sits from the trained cluster structure.

    Attributes:
        n_samples: fresh payloads measured.
        out_of_cluster: payloads outside every bicluster's assignment
            radius (x :data:`RADIUS_SLACK`).
        nearest_counts: in-radius payload counts per bicluster index.
    """

    n_samples: int
    out_of_cluster: int
    nearest_counts: dict[int, int]

    @property
    def out_of_cluster_rate(self) -> float:
        """Fraction of fresh payloads no trained bicluster claims."""
        if not self.n_samples:
            return 0.0
        return self.out_of_cluster / self.n_samples

    def to_dict(self) -> dict:
        """JSON-ready form for round records."""
        return {
            "n_samples": self.n_samples,
            "out_of_cluster": self.out_of_cluster,
            "out_of_cluster_rate": round(self.out_of_cluster_rate, 6),
        }


def measure_drift(
    pipeline: PSigenePipeline,
    result: PipelineResult,
    payloads: list[str],
) -> DriftSignal:
    """Score *payloads* against the trained bicluster geometry.

    Centroids, radii, and distances live in the biclusterer's
    transformed space — the space the dendrogram was built in — exactly
    like the pipeline's own nearest-centroid row assignment.
    """
    active = [b for b in result.biclusters if not b.is_black_hole]
    if not payloads or not active:
        return DriftSignal(
            n_samples=len(payloads), out_of_cluster=0, nearest_counts={}
        )
    transform = pipeline.config.biclusterer.transform_rows
    quantile = pipeline.config.assignment_radius_quantile
    training_space = transform(result.matrix.counts)
    centroids: list[np.ndarray] = []
    radii: list[float] = []
    for bicluster in active:
        block = training_space[bicluster.sample_indices]
        centroid = block.mean(axis=0)
        distances = np.linalg.norm(block - centroid, axis=1)
        radius = float(np.quantile(distances, quantile)) if len(
            distances
        ) else 0.0
        centroids.append(centroid)
        radii.append(max(radius, 1e-9))
    extractor = FeatureExtractor(
        catalog=result.catalog, normalizer=pipeline.normalizer
    )
    fresh = transform(extractor.extract_many(
        payloads,
        sample_ids=[f"drift-{i:06d}" for i in range(len(payloads))],
    ).counts)
    centroid_matrix = np.vstack(centroids)
    distance_matrix = np.linalg.norm(
        fresh[:, None, :] - centroid_matrix[None, :, :], axis=2
    )
    nearest = distance_matrix.argmin(axis=1)
    nearest_distance = distance_matrix[np.arange(len(payloads)), nearest]
    radius_vector = np.array(radii)[nearest] * RADIUS_SLACK
    inside = nearest_distance <= radius_vector
    nearest_counts: dict[int, int] = {}
    for position, ok in zip(nearest, inside):
        if ok:
            index = active[int(position)].index
            nearest_counts[index] = nearest_counts.get(index, 0) + 1
    return DriftSignal(
        n_samples=len(payloads),
        out_of_cluster=int((~inside).sum()),
        nearest_counts=nearest_counts,
    )


def rebicluster_update(
    pipeline: PSigenePipeline,
    result: PipelineResult,
    new_payloads: list[str],
) -> PipelineResult:
    """Full phase 2–4 retrain over the grown corpus.

    The original crawl is reused (phase 1 does not rerun); the pending
    payloads join it as ``canary`` samples, and extraction, pruning,
    biclustering, and signature generalization all rerun from scratch —
    new feature catalog, new cluster structure, new Θ.
    """
    samples = list(result.samples) + [
        AttackSample(
            sample_id=f"canary-{i:06d}", payload=payload, family="canary"
        )
        for i, payload in enumerate(new_payloads)
    ]
    matrix, pruning, benign, _extractor = pipeline.extract_features(samples)
    biclustering, biclusters = pipeline.bicluster(matrix)
    trainings, signature_set = pipeline.generalize(
        biclusters, matrix, benign
    )
    return PipelineResult(
        samples=samples,
        matrix=matrix,
        pruning=pruning,
        benign_matrix=benign,
        biclustering=biclustering,
        biclusters=biclusters,
        trainings=trainings,
        signature_set=signature_set,
        catalog=matrix.catalog,
    )


@dataclass(frozen=True)
class RefreshOutcome:
    """One refresh stage's product.

    Attributes:
        candidate: the candidate signature set (never yet published).
        result: the training state behind the candidate — the old
            result with a refit signature set (warm) or a brand-new
            pipeline result (rebicluster).  Adopted only on promotion.
        strategy: ``warm`` or ``rebicluster``.
        drift: the measured drift signal that picked the strategy.
        newton_iterations: optimizer work spent (0 for rebicluster —
            its cost is the whole pipeline, not marginal Newton steps).
    """

    candidate: SignatureSet
    result: PipelineResult
    strategy: str
    drift: DriftSignal
    newton_iterations: int = 0


def refresh_candidate(
    pipeline: PSigenePipeline,
    result: PipelineResult,
    pending_attacks: list[str],
    *,
    drift_threshold: float = 0.5,
    strategy: str = "auto",
) -> RefreshOutcome:
    """Produce a candidate signature set from the pending attacks.

    Args:
        pipeline: the training pipeline (config + normalizer reused).
        result: the incumbent training state.
        pending_attacks: attack payloads observed since the last promote.
        drift_threshold: out-of-cluster rate at which ``auto`` escalates
            from the warm path to a full re-bicluster.
        strategy: ``auto`` (measure, then decide), ``warm``, or
            ``rebicluster``.

    Raises:
        ValueError: unknown strategy, or no pending attacks to refresh
            from (a candidate identical to the incumbent proves nothing).
    """
    if strategy not in ("auto", "warm", "rebicluster"):
        raise ValueError(f"unknown refresh strategy {strategy!r}")
    if not pending_attacks:
        raise ValueError(
            "refresh needs pending attack samples; ingest before refreshing"
        )
    drift = measure_drift(pipeline, result, pending_attacks)
    chosen = strategy
    if strategy == "auto":
        chosen = (
            "rebicluster"
            if drift.out_of_cluster_rate > drift_threshold
            else "warm"
        )
    if chosen == "rebicluster":
        refreshed = rebicluster_update(pipeline, result, pending_attacks)
        return RefreshOutcome(
            candidate=refreshed.signature_set,
            result=refreshed,
            strategy="rebicluster",
            drift=drift,
        )
    update = incremental_update(
        pipeline, result, pending_attacks, strategy="warm"
    )
    return RefreshOutcome(
        candidate=update.signature_set,
        result=replace(result, signature_set=update.signature_set),
        strategy="warm",
        drift=drift,
        newton_iterations=update.newton_iterations,
    )
