"""Signature-set serialization.

A signature set is the deployable artifact — what an operator ships to
their IDS.  The JSON schema stores, per signature, the bicluster number,
threshold, Θ (intercept + coefficients), and the feature patterns/labels,
which is everything :class:`~repro.core.signature.GeneralizedSignature`
needs to evaluate payloads.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.signature import GeneralizedSignature, SignatureSet
from repro.features.definitions import FeatureCatalog, FeatureDefinition
from repro.learn.logistic import LogisticModel

SCHEMA_VERSION = 1


def signature_set_to_json(signature_set: SignatureSet) -> str:
    """Serialize a signature set to a JSON string."""
    payload = {
        "schema": SCHEMA_VERSION,
        "signatures": [
            {
                "bicluster": s.bicluster_index,
                "threshold": s.threshold,
                "theta": [float(v) for v in s.model.theta],
                "training_samples": s.training_samples,
                "bicluster_feature_count": s.bicluster_feature_count,
                "features": [
                    {
                        "pattern": d.pattern,
                        "label": d.label,
                        "source": d.source,
                    }
                    for d in s.features
                ],
            }
            for s in signature_set
        ],
    }
    return json.dumps(payload, indent=2)


def signature_set_from_json(text: str) -> SignatureSet:
    """Rebuild a signature set from :func:`signature_set_to_json` output.

    Raises:
        ValueError: on schema mismatch or malformed content.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {payload.get('schema')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    signatures: list[GeneralizedSignature] = []
    for entry in payload.get("signatures", []):
        definitions = [
            FeatureDefinition(
                index=i,
                pattern=f["pattern"],
                label=f["label"],
                source=f["source"],
            )
            for i, f in enumerate(entry["features"])
        ]
        theta = np.asarray(entry["theta"], dtype=np.float64)
        if theta.shape[0] != len(definitions) + 1:
            raise ValueError(
                f"bicluster {entry.get('bicluster')}: theta length "
                f"{theta.shape[0]} does not match {len(definitions)} features"
            )
        signatures.append(
            GeneralizedSignature(
                bicluster_index=int(entry["bicluster"]),
                features=FeatureCatalog(definitions),
                model=LogisticModel(theta),
                threshold=float(entry["threshold"]),
                bicluster_feature_count=int(
                    entry.get("bicluster_feature_count", 0)
                ),
                training_samples=int(entry.get("training_samples", 0)),
            )
        )
    return SignatureSet(signatures)
