"""Phase 4: turning biclusters into generalized signatures.

For each active bicluster, a logistic model is trained on the bicluster's
samples (positive class) against benign traffic (negative class), using the
bicluster's features as the hypothesis variables (Section II-D).  After
training, coefficients near zero are pruned and the model refit — this is
the effect the paper observes in Table VI, where "logistic regression does
significant amount of pruning of features" (90 biclustering features become
a 33-feature signature, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.bicluster import Bicluster
from repro.core.signature import GeneralizedSignature
from repro.features.definitions import FeatureCatalog
from repro.learn.logistic import TrainingReport, train_logistic


@dataclass
class GeneralizerConfig:
    """Signature-training knobs.

    Attributes:
        l2: ridge strength for the logistic fit.
        prune_ratio: features whose |coefficient|·std falls below this
            fraction of the largest such influence are pruned.
        threshold: operating probability threshold of the signatures.
            The default 0.8 is the ROC-chosen operating point (Figure 3's
            purpose): at 0.5 a bare quote probe squeaks past the weakest
            signature at p≈0.503, while real attack payloads saturate the
            sigmoid well above 0.9.
        refit_after_prune: retrain on the surviving features (keeps Θ
            properly calibrated for the pruned feature set).
        max_negative_samples: cap on benign rows per signature fit (the
            benign trace is huge; a balanced slice trains identically).
    """

    l2: float = 1.0
    prune_ratio: float = 0.05
    threshold: float = 0.8
    refit_after_prune: bool = True
    max_negative_samples: int = 20_000


@dataclass
class SignatureTraining:
    """A trained signature plus its optimization diagnostics."""

    signature: GeneralizedSignature
    report: TrainingReport
    pruned_features: int


class SignatureGeneralizer:
    """Trains one :class:`GeneralizedSignature` per active bicluster."""

    def __init__(self, config: GeneralizerConfig | None = None) -> None:
        self.config = config if config is not None else GeneralizerConfig()

    def train(
        self,
        bicluster: Bicluster,
        attack_counts: np.ndarray,
        benign_counts: np.ndarray,
        catalog: FeatureCatalog,
        *,
        rng: np.random.Generator | None = None,
    ) -> SignatureTraining:
        """Train the signature for one bicluster.

        Args:
            bicluster: the bicluster (sample rows + feature columns).
            attack_counts: full training count matrix (all attack samples).
            benign_counts: benign count matrix over the same catalog.
            catalog: the (pruned) feature catalog both matrices use.
            rng: used only to subsample an oversized benign matrix.
        """
        config = self.config
        columns = bicluster.feature_indices
        positives = attack_counts[np.ix_(bicluster.sample_indices, columns)]
        negatives = benign_counts[:, columns]
        if negatives.shape[0] > config.max_negative_samples:
            rng = rng if rng is not None else np.random.default_rng(0)
            picked = rng.choice(
                negatives.shape[0], config.max_negative_samples, replace=False
            )
            negatives = negatives[np.sort(picked)]

        x = np.vstack([positives, negatives]).astype(np.float64)
        y = np.concatenate([
            np.ones(positives.shape[0]), np.zeros(negatives.shape[0])
        ])
        model, report = train_logistic(x, y, l2=config.l2)

        kept_local = self._select_features(x, model.coefficients)
        pruned = len(columns) - kept_local.size
        if pruned and config.refit_after_prune and kept_local.size:
            model, report = train_logistic(
                x[:, kept_local], y, l2=config.l2
            )
            columns = columns[kept_local]
        elif kept_local.size == 0:
            kept_local = np.arange(len(columns))
            pruned = 0

        signature = GeneralizedSignature(
            bicluster_index=bicluster.index,
            features=catalog.subset([int(c) for c in columns]),
            model=model,
            threshold=config.threshold,
            bicluster_feature_count=bicluster.n_features,
            training_samples=bicluster.n_samples,
        )
        return SignatureTraining(
            signature=signature, report=report, pruned_features=pruned
        )

    def _select_features(
        self, x: np.ndarray, coefficients: np.ndarray
    ) -> np.ndarray:
        """Indices (into the bicluster's feature list) that survive pruning.

        Influence is ``|coefficient| · column std`` — a large weight on a
        never-varying column is as useless as a tiny weight on an active
        one.
        """
        std = x.std(axis=0)
        influence = np.abs(coefficients) * np.where(std == 0, 1e-12, std)
        ceiling = influence.max()
        if ceiling <= 0:
            return np.arange(len(coefficients))
        return np.nonzero(influence >= self.config.prune_ratio * ceiling)[0]
