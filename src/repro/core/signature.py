"""Generalized signatures: the paper's final artifact.

Section II-D: "a signature Sig_bj is a logistic regression model built to
predict whether an SQL query is an attack similar to the samples in cluster
b_j" — the bicluster's features are the variables of the hypothesis
function ``h_θ(F) = g(θᵀF)``, and the signature fires when the probability
crosses a threshold.  Operationally each feature value is a ``count_all``
over the normalized request payload (Section III-C).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.features.definitions import FeatureCatalog
from repro.learn.logistic import LogisticModel, sigmoid
from repro.match import FusedSetEvaluator, fused_enabled
from repro.normalize import Normalizer
from repro.regexlib import compile_pattern

# Sentinel cached when a set's features defeat the fused compiler; the
# legacy loop then answers every evaluation without retrying the build.
_UNFUSABLE = object()


@dataclass
class GeneralizedSignature:
    """One per-bicluster probabilistic signature.

    Attributes:
        bicluster_index: the paper-style 1-based bicluster number.
        features: the signature's feature subset (post logistic pruning).
        model: trained logistic model; ``model.theta`` is the paper's Θ
            (intercept first, then one coefficient per feature, aligned
            with ``features``).
        threshold: probability above which the signature alerts.
        bicluster_feature_count: size of the bicluster's feature set before
            logistic pruning (Table VI column 3).
        training_samples: bicluster sample count (Table VI column 2).
    """

    bicluster_index: int
    features: FeatureCatalog
    model: LogisticModel
    threshold: float = 0.5
    bicluster_feature_count: int = 0
    training_samples: int = 0
    _compiled: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if len(self.model.coefficients) != len(self.features):
            raise ValueError(
                "model coefficients must align with the feature subset"
            )
        self._compiled = [compile_pattern(d.pattern) for d in self.features]

    @property
    def n_features(self) -> int:
        """Signature size (Table VI column 4)."""
        return len(self.features)

    def feature_vector(self, normalized_payload: str) -> np.ndarray:
        """Per-feature ``count_all`` values for one normalized payload."""
        counts = np.zeros(len(self._compiled), dtype=np.float64)
        for column, compiled in enumerate(self._compiled):
            counts[column] = sum(
                1 for _ in compiled.finditer(normalized_payload)
            )
        return counts

    def probability(self, normalized_payload: str) -> float:
        """``h_θ``: probability the payload belongs to this attack class."""
        counts = self.feature_vector(normalized_payload)
        z = self.model.intercept + float(counts @ self.model.coefficients)
        return float(sigmoid(z))

    def matches(self, normalized_payload: str) -> bool:
        """Deterministic verdict: probability at or above the threshold."""
        return self.probability(normalized_payload) >= self.threshold

    def describe(self) -> str:
        """Θ in the paper's Section II-D print style."""
        terms = [f"{self.model.intercept:+.6f}"]
        for definition, coefficient in zip(
            self.features, self.model.coefficients
        ):
            terms.append(f"{coefficient:+.6f}·f[{definition.label}]")
        body = " ".join(terms)
        return f"Sig_b{self.bicluster_index}: g({body})"


class SignatureSet:
    """An ordered collection of generalized signatures with one normalizer.

    The set alerts when *any* member signature's probability crosses its
    threshold — pSigene's operational semantics inside Bro.
    """

    def __init__(
        self,
        signatures: list[GeneralizedSignature],
        normalizer: Normalizer | None = None,
    ) -> None:
        self.signatures = list(signatures)
        self.normalizer = normalizer if normalizer is not None else Normalizer()
        self._fused = None

    def _fused_evaluator(self):
        """The set's fused evaluator, built lazily; ``_UNFUSABLE`` when
        the fused compiler rejected the feature union (legacy loop runs
        instead — slower, never wrong)."""
        if self._fused is None:
            try:
                self._fused = FusedSetEvaluator(self.signatures)
            except Exception:
                self._fused = _UNFUSABLE
        return self._fused

    def warm(self) -> bool:
        """Build the fused evaluator eagerly (the gateway publish path
        calls this so the first request never pays compile cost).

        Returns True when the set will take the fused fast path.
        """
        if not self.signatures:
            return False
        return self._fused_evaluator() is not _UNFUSABLE

    def __getstate__(self) -> dict:
        """Pickle without the fused evaluator; workers rebuild it lazily
        from the process-wide matcher memo."""
        state = dict(self.__dict__)
        state["_fused"] = None
        return state

    def __len__(self) -> int:
        return len(self.signatures)

    def __iter__(self):
        return iter(self.signatures)

    def __getitem__(self, index: int) -> GeneralizedSignature:
        return self.signatures[index]

    def probabilities(self, payload: str) -> np.ndarray:
        """Per-signature probabilities for a raw payload."""
        normalized = self.normalizer(payload)
        if fused_enabled() and self.signatures:
            evaluator = self._fused_evaluator()
            if evaluator is not _UNFUSABLE:
                return np.array(evaluator.probabilities(normalized))
        return np.array(
            [s.probability(normalized) for s in self.signatures]
        )

    def evaluate(self, payload: str) -> tuple[float, list[int]]:
        """One-pass verdict: ``(score, fired bicluster indices)``.

        Normalizes the payload once and evaluates every signature once
        against the shared normalized form — the hot-path entry point.
        ``score`` is the max per-signature probability; ``fired`` holds the
        bicluster indices whose probability reached their threshold.
        """
        return self.evaluate_normalized(self.normalizer(payload))

    def evaluate_normalized(
        self, normalized_payload: str
    ) -> tuple[float, list[int]]:
        """:meth:`evaluate` for an already-normalized payload.

        Takes the fused single-pass engine (:mod:`repro.match`) when it
        is enabled and the set compiled; otherwise the per-signature
        reference loop runs.  Both paths produce bit-identical scores
        and verdicts — the conformance oracle's ``serial-legacy`` path
        holds them to that.
        """
        score = 0.0
        fired: list[int] = []
        if fused_enabled() and self.signatures:
            evaluator = self._fused_evaluator()
            if evaluator is not _UNFUSABLE:
                for signature, probability in zip(
                    self.signatures,
                    evaluator.probabilities(normalized_payload),
                ):
                    if probability > score:
                        score = probability
                    if probability >= signature.threshold:
                        fired.append(signature.bicluster_index)
                return score, fired
        for signature in self.signatures:
            probability = signature.probability(normalized_payload)
            if probability > score:
                score = probability
            if probability >= signature.threshold:
                fired.append(signature.bicluster_index)
        return score, fired

    def score(self, payload: str) -> float:
        """Max per-signature probability (the set's decision score).

        .. deprecated::
            Use :meth:`evaluate` (or mount the set behind a
            :class:`~repro.ids.engine.Detector`); calling ``score`` and
            ``alerts`` separately normalizes and matches twice.
        """
        warnings.warn(
            "SignatureSet.score() is deprecated; use evaluate() — it "
            "returns (score, fired) in one normalization pass",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evaluate(payload)[0]

    def alerts(self, payload: str) -> list[int]:
        """Bicluster indices of the signatures that fire on *payload*.

        .. deprecated::
            Use :meth:`evaluate`; see :meth:`score`.
        """
        warnings.warn(
            "SignatureSet.alerts() is deprecated; use evaluate() — it "
            "returns (score, fired) in one normalization pass",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evaluate(payload)[1]

    def matches(self, payload: str) -> bool:
        """True when any member signature fires on the raw payload."""
        return bool(self.evaluate(payload)[1])

    def subset(self, bicluster_indices: list[int]) -> "SignatureSet":
        """A new set restricted to the given bicluster numbers.

        Used for the paper's 7-signature versus 9-signature comparison.
        """
        wanted = set(bicluster_indices)
        picked = [
            s for s in self.signatures if s.bicluster_index in wanted
        ]
        return SignatureSet(picked, normalizer=self.normalizer)

    def with_threshold(self, threshold: float) -> "SignatureSet":
        """A new set with every signature's threshold replaced (ROC sweeps)."""
        replaced = [
            GeneralizedSignature(
                bicluster_index=s.bicluster_index,
                features=s.features,
                model=s.model,
                threshold=threshold,
                bicluster_feature_count=s.bicluster_feature_count,
                training_samples=s.training_samples,
            )
            for s in self.signatures
        ]
        swept = SignatureSet(replaced, normalizer=self.normalizer)
        # Probabilities are independent of thresholds and the sweep keeps
        # features/models/order, so the fused evaluator carries over —
        # a 100-point ROC sweep compiles the catalog exactly once.
        swept._fused = self._fused
        return swept
