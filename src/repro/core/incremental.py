"""Experiment 2 substrate: incremental signature updates.

Section III-E: "we first incremented the number of attack samples while
learning the Θ parameters in logistic regression ... This reflects the real
world scenario where fresh attack samples will be fed to pSigene to do
incremental training with these new samples."  New samples are assigned to
their nearest bicluster (the cluster structure is kept fixed — the paper
retrains only Θ), the per-bicluster training sets grow, and every signature
is refit.

Two update strategies implement the paper's open design question ("This
task has some open design choices in terms of the machine learning
technique to use"): ``retrain`` re-runs the full phase-4 fit (including
feature re-pruning) on the grown training sets; ``warm`` keeps each
signature's feature subset fixed and warm-starts Newton from the previous
Θ — converging in a fraction of the optimizer work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.bicluster import Bicluster
from repro.core.pipeline import PipelineResult, PSigenePipeline
from repro.core.signature import SignatureSet
from repro.features.extractor import FeatureExtractor
from repro.features.matrix import FeatureMatrix


@dataclass
class IncrementalUpdate:
    """Result of one incremental training round.

    Attributes:
        signature_set: the refit signatures.
        assigned: new-sample counts per bicluster index.
        added_rows: number of new training rows admitted.
        newton_iterations: total optimizer work across all signatures
            (compare strategies with this).
    """

    signature_set: SignatureSet
    assigned: dict[int, int]
    added_rows: int
    newton_iterations: int = 0


def incremental_update(
    pipeline: PSigenePipeline,
    result: PipelineResult,
    new_payloads: list[str],
    *,
    strategy: str = "retrain",
) -> IncrementalUpdate:
    """Fold fresh attack payloads into the signatures.

    Args:
        pipeline: the pipeline that produced *result* (its config and
            normalizer are reused).
        result: a completed pipeline run.
        new_payloads: fresh attack payload strings (already known to be
            attacks — the paper feeds labeled fresh samples).
        strategy: ``retrain`` (full phase-4 refit) or ``warm``
            (fixed feature subsets, Newton warm-started from the old Θ).

    Returns:
        the refit signature set and assignment bookkeeping.
    """
    if strategy not in ("retrain", "warm"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if not new_payloads:
        return IncrementalUpdate(
            signature_set=result.signature_set, assigned={}, added_rows=0
        )

    extractor = FeatureExtractor(
        catalog=result.catalog, normalizer=pipeline.normalizer
    )
    _check_catalog_alignment(result, extractor)
    new_matrix = extractor.extract_many(
        new_payloads,
        sample_ids=[f"inc-{i:06d}" for i in range(len(new_payloads))],
    )

    active = [b for b in result.biclusters if not b.is_black_hole]
    if not active:
        raise ValueError(
            "cold start: the warm state has no active biclusters to "
            "grow — run the full pipeline (or a re-bicluster refresh) "
            "before incremental training"
        )
    transform = pipeline.config.biclusterer.transform_rows
    training_space = transform(result.matrix.counts)
    centroids = np.vstack([
        training_space[b.sample_indices].mean(axis=0) for b in active
    ])
    block = transform(new_matrix.counts)
    distances = np.linalg.norm(
        block[:, None, :] - centroids[None, :, :], axis=2
    )
    nearest = distances.argmin(axis=1)

    combined_counts = np.vstack([result.matrix.counts, new_matrix.counts])
    combined = FeatureMatrix(
        counts=combined_counts,
        catalog=result.catalog,
        sample_ids=result.matrix.sample_ids + new_matrix.sample_ids,
    )
    offset = result.matrix.n_samples
    assigned: dict[int, int] = {}
    grown: list[Bicluster] = []
    for position, bicluster in enumerate(active):
        new_rows = offset + np.nonzero(nearest == position)[0]
        assigned[bicluster.index] = int(new_rows.size)
        grown.append(
            Bicluster(
                index=bicluster.index,
                sample_indices=np.concatenate(
                    [bicluster.sample_indices, new_rows]
                ),
                feature_indices=bicluster.feature_indices,
                is_black_hole=False,
            )
        )

    if strategy == "warm":
        signature_set, newton_total = _warm_update(
            pipeline, result, grown, combined
        )
    else:
        trainings, signature_set = pipeline.generalize(
            grown, combined, result.benign_matrix
        )
        newton_total = sum(
            t.report.newton_iterations for t in trainings
        )
    return IncrementalUpdate(
        signature_set=signature_set,
        assigned=assigned,
        added_rows=len(new_payloads),
        newton_iterations=newton_total,
    )


def _check_catalog_alignment(
    result: PipelineResult, extractor: FeatureExtractor
) -> None:
    """Reject a warm state whose catalog disagrees with its matrix.

    The incremental paths stack fresh extraction columns directly onto
    ``result.matrix.counts`` and index signature feature subsets by
    catalog position.  If ``result.catalog`` (what the refreshed
    extractor counts) and ``result.matrix.catalog`` (what the stored
    columns mean) differ in count *or order*, every lookup silently
    reads the wrong column — so mismatches must die loudly here.
    """
    stored = list(result.matrix.catalog)
    refreshed = list(extractor.catalog)
    if len(stored) != len(refreshed):
        raise ValueError(
            "warm state catalog mismatch: the training matrix has "
            f"{len(stored)} feature columns but the refreshed extractor "
            f"counts {len(refreshed)} — the result's catalog and matrix "
            "come from different extractions"
        )
    for position, (a, b) in enumerate(zip(stored, refreshed)):
        if a.pattern != b.pattern:
            raise ValueError(
                "warm state catalog mismatch: feature column "
                f"{position} is {a.pattern!r} in the training matrix "
                f"but {b.pattern!r} in the refreshed extractor — "
                "column order diverged, refusing to mis-index"
            )


def _warm_update(
    pipeline: PSigenePipeline,
    result: PipelineResult,
    grown: list[Bicluster],
    combined: FeatureMatrix,
) -> tuple[SignatureSet, int]:
    """Θ-only refit: fixed feature subsets, warm-started Newton."""
    from repro.core.signature import GeneralizedSignature
    from repro.learn.logistic import train_logistic

    config = pipeline.config.generalizer
    pattern_to_column = {
        d.pattern: i for i, d in enumerate(result.catalog)
    }
    by_index = {b.index: b for b in grown}
    benign = result.benign_matrix.counts
    rng = np.random.default_rng(pipeline.config.seed + 4)
    if benign.shape[0] > config.max_negative_samples:
        picked = np.sort(rng.choice(
            benign.shape[0], config.max_negative_samples, replace=False
        ))
        benign = benign[picked]

    signatures: list[GeneralizedSignature] = []
    newton_total = 0
    for old in result.signature_set:
        bicluster = by_index.get(old.bicluster_index)
        if bicluster is None:
            signatures.append(old)
            continue
        missing = [
            d.pattern for d in old.features
            if d.pattern not in pattern_to_column
        ]
        if missing:
            raise ValueError(
                f"signature {old.bicluster_index} uses features absent "
                f"from the warm state's catalog: {missing[:3]!r} — the "
                "signature set and catalog come from different runs"
            )
        columns = [
            pattern_to_column[d.pattern] for d in old.features
        ]
        positives = combined.counts[
            np.ix_(bicluster.sample_indices, columns)
        ]
        negatives = benign[:, columns]
        x = np.vstack([positives, negatives]).astype(np.float64)
        y = np.concatenate([
            np.ones(positives.shape[0]), np.zeros(negatives.shape[0])
        ])
        model, report = train_logistic(
            x, y, l2=config.l2, theta0=old.model.theta
        )
        newton_total += report.newton_iterations
        signatures.append(GeneralizedSignature(
            bicluster_index=old.bicluster_index,
            features=old.features,
            model=model,
            threshold=old.threshold,
            bicluster_feature_count=old.bicluster_feature_count,
            training_samples=bicluster.n_samples,
        ))
    return (
        SignatureSet(signatures, normalizer=pipeline.normalizer),
        newton_total,
    )
