"""pSigene core: the four-phase pipeline and its signature artifacts."""

from repro.core.generalizer import (
    GeneralizerConfig,
    SignatureGeneralizer,
    SignatureTraining,
)
from repro.core.incremental import IncrementalUpdate, incremental_update
from repro.core.pipeline import PipelineConfig, PipelineResult, PSigenePipeline
from repro.core.serialize import (
    signature_set_from_json,
    signature_set_to_json,
)
from repro.core.signature import GeneralizedSignature, SignatureSet

__all__ = [
    "GeneralizedSignature",
    "SignatureSet",
    "GeneralizerConfig",
    "SignatureGeneralizer",
    "SignatureTraining",
    "PipelineConfig",
    "PipelineResult",
    "PSigenePipeline",
    "incremental_update",
    "IncrementalUpdate",
    "signature_set_to_json",
    "signature_set_from_json",
]
