"""The pSigene pipeline: crawl → features → biclusters → signatures.

This orchestrates the four phases of Figure 1 end to end and is the main
entry point of the library:

>>> from repro.core import PipelineConfig, PSigenePipeline
>>> result = PSigenePipeline(PipelineConfig(n_attack_samples=1500)).run()
>>> score, fired = result.signature_set.evaluate(
...     "id=1' union select 1,2,database()-- -")
>>> score
0.99...

Scale note (documented in DESIGN.md): UPGMA is quadratic in distinct rows,
so clustering runs over duplicate-collapsed prototypes and, beyond
``max_cluster_rows`` prototypes, over a seeded row subsample; every
remaining training sample is then assigned to its nearest bicluster
centroid (within the cluster's own radius), so signature training still
sees the full corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.bicluster import Bicluster, Biclusterer, BiclusteringResult
from repro.core.generalizer import (
    GeneralizerConfig,
    SignatureGeneralizer,
    SignatureTraining,
)
from repro.core.signature import SignatureSet
from repro.corpus.benign import BenignTrafficGenerator
from repro.corpus.grammar import AttackSample, CorpusGenerator
from repro.crawler.portals import SimulatedWeb
from repro.crawler.session import CrawlSession
from repro.features.definitions import FeatureCatalog
from repro.features.extractor import FeatureExtractor
from repro.features.matrix import FeatureMatrix
from repro.features.pruning import PruningReport, prune
from repro.normalize import Normalizer
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.registry import get_registry
from repro.obs.trace import Tracer


@dataclass
class PipelineConfig:
    """Everything the pipeline needs, with paper-shaped defaults.

    Attributes:
        seed: master seed; all phases derive their RNGs from it.
        n_attack_samples: corpus size (paper: 30,000).
        n_benign_train: benign requests used as the negative class.
        use_crawler: collect samples by actually crawling the simulated
            portals (phase 1) rather than drawing from the generator
            directly; identical corpus, plus crawl noise.
        max_cluster_rows: prototype cap for the UPGMA stage.
        assignment_radius_quantile: member-distance quantile that sets each
            bicluster's assignment radius.
        biclusterer: sample/feature clustering knobs.
        generalizer: signature-training knobs.
        workers: worker processes for phase-2 feature extraction (attack
            and benign matrices); 1 keeps extraction serial.  Outputs are
            identical either way (see :mod:`repro.parallel.extract`).
        extraction_chunk_size: payloads per parallel extraction task
            (``None`` = auto).
        manifest_dir: directory for the run manifest (phases, timings,
            counts, git version); ``None`` disables manifest emission.
    """

    seed: int = 2012
    n_attack_samples: int = 3000
    n_benign_train: int = 8000
    use_crawler: bool = True
    max_cluster_rows: int = 2500
    assignment_radius_quantile: float = 0.95
    biclusterer: Biclusterer = field(default_factory=Biclusterer)
    generalizer: GeneralizerConfig = field(default_factory=GeneralizerConfig)
    workers: int = 1
    extraction_chunk_size: int | None = None
    manifest_dir: str | None = None


@dataclass
class PipelineResult:
    """Everything the pipeline produced.

    Attributes:
        samples: the collected attack samples (phase 1).
        matrix: pruned training feature matrix (phase 2).
        pruning: the 477→active-set pruning report (phase 2).
        benign_matrix: benign training matrix over the pruned catalog.
        biclustering: raw biclustering output over the clustered subset.
        biclusters: full-corpus biclusters after nearest-centroid extension.
        trainings: per-signature training diagnostics (phase 4).
        signature_set: the deliverable.
        catalog: the pruned feature catalog.
        trace: exported span tree of the run (``Tracer.export()``).
        manifest_path: where the run manifest was written, when
            :attr:`PipelineConfig.manifest_dir` was set.
    """

    samples: list[AttackSample]
    matrix: FeatureMatrix
    pruning: PruningReport
    benign_matrix: FeatureMatrix
    biclustering: BiclusteringResult
    biclusters: list[Bicluster]
    trainings: list[SignatureTraining]
    signature_set: SignatureSet
    catalog: FeatureCatalog
    trace: dict | None = None
    manifest_path: str | None = None

    def table6(self) -> list[dict[str, int]]:
        """Table VI rows: per-bicluster sample/feature/signature sizes."""
        rows = []
        for training in self.trainings:
            signature = training.signature
            rows.append({
                "bicluster": signature.bicluster_index,
                "samples": signature.training_samples,
                "features_biclustering": signature.bicluster_feature_count,
                "features_signature": signature.n_features,
            })
        return rows

    def centroid_of(self, bicluster: Bicluster) -> np.ndarray:
        """Raw-count centroid of a bicluster's training rows."""
        return self.matrix.counts[bicluster.sample_indices].mean(axis=0)


class PSigenePipeline:
    """Runs the four phases; see module docstring for a quickstart."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.normalizer = Normalizer()

    # -- phase 1 -------------------------------------------------------------

    def collect_samples(self) -> list[AttackSample]:
        """Crawl the portals (or draw directly from the generator)."""
        config = self.config
        if config.use_crawler:
            web = SimulatedWeb(
                corpus_size=config.n_attack_samples, seed=config.seed
            )
            report = CrawlSession(web).run()
            return report.samples
        generator = CorpusGenerator(seed=config.seed)
        return generator.generate(config.n_attack_samples)

    # -- phase 2 -------------------------------------------------------------

    def extract_features(
        self, samples: list[AttackSample]
    ) -> tuple[FeatureMatrix, PruningReport, FeatureMatrix, FeatureExtractor]:
        """Full-catalog extraction, pruning, and benign-matrix extraction."""
        config = self.config
        extractor = FeatureExtractor(normalizer=self.normalizer)
        full = extractor.extract_many(
            (s.payload for s in samples),
            sample_ids=[s.sample_id for s in samples],
            workers=config.workers,
            chunk_size=config.extraction_chunk_size,
        )
        pruned, report = prune(full)
        pruned_extractor = extractor.with_catalog(pruned.catalog)
        benign_trace = BenignTrafficGenerator(seed=config.seed + 1).trace(
            config.n_benign_train, name="benign-train"
        )
        benign = pruned_extractor.extract_many(
            benign_trace.payloads(),
            workers=config.workers,
            chunk_size=config.extraction_chunk_size,
        )
        return pruned, report, benign, pruned_extractor

    # -- phase 3 -------------------------------------------------------------

    def bicluster(
        self, matrix: FeatureMatrix
    ) -> tuple[BiclusteringResult, list[Bicluster]]:
        """Cluster (a subsample of) the matrix, then extend to all rows."""
        config = self.config
        rng = np.random.default_rng(config.seed + 2)
        n = matrix.n_samples
        if n > config.max_cluster_rows:
            subset = np.sort(
                rng.choice(n, config.max_cluster_rows, replace=False)
            )
        else:
            subset = np.arange(n)
        result = config.biclusterer.fit(matrix.counts[subset])
        extended = self._extend_biclusters(matrix.counts, subset, result)
        return result, extended

    def _extend_biclusters(
        self,
        counts: np.ndarray,
        subset: np.ndarray,
        result: BiclusteringResult,
    ) -> list[Bicluster]:
        """Assign unclustered rows to the nearest bicluster within radius.

        Centroids, radii, and distances all live in the biclusterer's
        transformed space (the space the dendrogram was built in); the raw
        counts are only used for the black-hole re-check.
        """
        quantile = self.config.assignment_radius_quantile
        transformed = self.config.biclusterer.transform_rows(counts)
        extended: list[Bicluster] = []
        centroids: list[np.ndarray] = []
        radii: list[float] = []
        member_sets: list[set[int]] = []
        claimed = np.zeros(counts.shape[0], dtype=bool)

        for bicluster in result.biclusters:
            members = subset[bicluster.sample_indices]
            block = transformed[members]
            centroid = block.mean(axis=0)
            distances = np.linalg.norm(block - centroid, axis=1)
            radius = float(np.quantile(distances, quantile)) if len(
                distances
            ) else 0.0
            centroids.append(centroid)
            radii.append(max(radius, 1e-9))
            member_sets.append(set(int(m) for m in members))
            claimed[members] = True

        if centroids:
            centroid_matrix = np.vstack(centroids)
            unclaimed = np.nonzero(~claimed)[0]
            if unclaimed.size:
                block = transformed[unclaimed]
                distance_matrix = np.linalg.norm(
                    block[:, None, :] - centroid_matrix[None, :, :], axis=2
                )
                nearest = distance_matrix.argmin(axis=1)
                nearest_distance = distance_matrix[
                    np.arange(unclaimed.size), nearest
                ]
                for row, cluster_pos, distance in zip(
                    unclaimed, nearest, nearest_distance
                ):
                    if distance <= radii[cluster_pos] * 1.05:
                        member_sets[cluster_pos].add(int(row))

        for position, bicluster in enumerate(result.biclusters):
            sample_indices = np.array(sorted(member_sets[position]), dtype=int)
            block = counts[sample_indices]
            extended.append(
                Bicluster(
                    index=bicluster.index,
                    sample_indices=sample_indices,
                    feature_indices=bicluster.feature_indices,
                    is_black_hole=self.config.biclusterer.is_black_hole(block),
                )
            )
        return extended

    # -- phase 4 -------------------------------------------------------------

    def generalize(
        self,
        biclusters: list[Bicluster],
        matrix: FeatureMatrix,
        benign: FeatureMatrix,
    ) -> tuple[list[SignatureTraining], SignatureSet]:
        """Train one generalized signature per active bicluster."""
        generalizer = SignatureGeneralizer(self.config.generalizer)
        rng = np.random.default_rng(self.config.seed + 3)
        trainings: list[SignatureTraining] = []
        for bicluster in biclusters:
            if bicluster.is_black_hole or bicluster.n_samples < 2:
                continue
            trainings.append(
                generalizer.train(
                    bicluster,
                    matrix.counts,
                    benign.counts,
                    matrix.catalog,
                    rng=rng,
                )
            )
        signature_set = SignatureSet(
            [t.signature for t in trainings], normalizer=self.normalizer
        )
        return trainings, signature_set

    # -- orchestration ---------------------------------------------------------

    def run(self) -> PipelineResult:
        """Execute all four phases and return the full result.

        The whole run is traced: each phase is a named span under
        ``pipeline.run``, instrumented library calls underneath
        (``features.extract_many``, ``cluster.linkage``, ...) nest as
        children, and the exported tree lands on
        :attr:`PipelineResult.trace`.  With
        :attr:`PipelineConfig.manifest_dir` set, a validated run
        manifest is also written and its path recorded.
        """
        config = self.config
        tracer = Tracer(registry=get_registry())
        with tracer.activate(), tracer.span(
            "pipeline.run",
            seed=config.seed,
            n_attack_samples=config.n_attack_samples,
            workers=config.workers,
        ):
            with tracer.span("phase.crawl", use_crawler=config.use_crawler):
                samples = self.collect_samples()
            with tracer.span("phase.features") as features_span:
                matrix, pruning, benign, _extractor = self.extract_features(
                    samples
                )
                features_span.set(
                    features_initial=pruning.initial_features,
                    features_kept=pruning.final_features,
                )
            with tracer.span("phase.bicluster") as bicluster_span:
                biclustering, biclusters = self.bicluster(matrix)
                bicluster_span.set(biclusters=len(biclusters))
            with tracer.span("phase.generalize") as generalize_span:
                trainings, signature_set = self.generalize(
                    biclusters, matrix, benign
                )
                generalize_span.set(signatures=len(signature_set))
        result = PipelineResult(
            samples=samples,
            matrix=matrix,
            pruning=pruning,
            benign_matrix=benign,
            biclustering=biclustering,
            biclusters=biclusters,
            trainings=trainings,
            signature_set=signature_set,
            catalog=matrix.catalog,
            trace=tracer.export(),
        )
        if config.manifest_dir is not None:
            result.manifest_path = self._write_manifest(tracer, result)
        return result

    def _write_manifest(
        self, tracer: Tracer, result: PipelineResult
    ) -> str:
        """Emit the run manifest; returns the written path."""
        config = self.config
        manifest = build_manifest(
            seed=config.seed,
            config={
                "n_attack_samples": config.n_attack_samples,
                "n_benign_train": config.n_benign_train,
                "use_crawler": config.use_crawler,
                "max_cluster_rows": config.max_cluster_rows,
                "workers": config.workers,
            },
            phases=tracer.phase_summaries(),
            counts={
                "samples": len(result.samples),
                "features": len(result.catalog),
                "biclusters": len(result.biclusters),
                "signatures": len(result.signature_set),
            },
            trace=result.trace,
        )
        return write_manifest(manifest, config.manifest_dir)
