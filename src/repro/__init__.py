"""repro — a reproduction of pSigene (DSN 2014).

pSigene: Webcrawling to Generalize SQL Injection Signatures
(Modelo-Howard, Gutierrez, Arshad, Bagchi, Qi).

Top-level convenience re-exports cover the quickstart path; subpackages
hold the full system (see DESIGN.md for the inventory):

- :mod:`repro.core` — the four-phase pipeline and signature artifacts
- :mod:`repro.crawler` — webcrawling substrate with simulated portals
- :mod:`repro.corpus` — SQLi grammar, benign traffic, vulnerable webapp
- :mod:`repro.features` — the three-source feature catalog and extraction
- :mod:`repro.cluster` — UPGMA biclustering from scratch
- :mod:`repro.learn` — logistic regression via Newton + PCG
- :mod:`repro.ids` — signature-IDS engine and the four baseline rulesets
- :mod:`repro.scanners` — SQLmap/Arachni/Vega simulators
- :mod:`repro.perdisci` — the token-subsequence baseline
- :mod:`repro.eval` — drivers for every table and figure in the paper
"""

from repro.core import (
    GeneralizedSignature,
    PipelineConfig,
    PSigenePipeline,
    SignatureSet,
)

__version__ = "1.0.0"

__all__ = [
    "PSigenePipeline",
    "PipelineConfig",
    "SignatureSet",
    "GeneralizedSignature",
    "__version__",
]
