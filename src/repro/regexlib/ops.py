"""Compiled-regex cache and the ``count_all`` matcher.

Section III-C: "we coded a function ``count_all()`` that accepted as input
two parameters, a regular expression and a string, and returned the number
of times the regular expression was found in the string."  Every feature
extraction and every pSigene signature evaluation goes through this
function, so the compile cache matters for the performance experiment.
"""

from __future__ import annotations

import re
from functools import lru_cache


class PatternError(ValueError):
    """Raised when a feature pattern does not compile."""


@lru_cache(maxsize=4096)
def compile_pattern(pattern: str, *, ignore_case: bool = True) -> re.Pattern[str]:
    """Compile and cache *pattern*.

    SQLi signatures are case-insensitive by convention (the ModSecurity CRS
    examples in the paper are "seven case insensitive groups"), so
    ``ignore_case`` defaults to true.
    """
    flags = re.IGNORECASE if ignore_case else 0
    try:
        return re.compile(pattern, flags)
    except re.error as exc:
        raise PatternError(f"cannot compile {pattern!r}: {exc}") from exc


def count_all(pattern: str, text: str, *, ignore_case: bool = True) -> int:
    """Number of non-overlapping matches of *pattern* in *text*.

    Zero-width matches are counted at most once per position by ``finditer``
    semantics; patterns that can match the empty string everywhere would
    distort counts, so they are rejected at compile time.
    """
    compiled = compile_pattern(pattern, ignore_case=ignore_case)
    if compiled.match(""):
        raise PatternError(f"pattern {pattern!r} matches the empty string")
    return sum(1 for _ in compiled.finditer(text))


def matches(pattern: str, text: str, *, ignore_case: bool = True) -> bool:
    """True when *pattern* occurs at least once in *text*."""
    compiled = compile_pattern(pattern, ignore_case=ignore_case)
    return compiled.search(text) is not None


def validate(pattern: str) -> bool:
    """True when *pattern* compiles and cannot match the empty string."""
    try:
        compiled = compile_pattern(pattern)
    except PatternError:
        return False
    return not compiled.match("")
