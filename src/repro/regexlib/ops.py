"""Compiled-regex cache and the ``count_all`` matcher.

Section III-C: "we coded a function ``count_all()`` that accepted as input
two parameters, a regular expression and a string, and returned the number
of times the regular expression was found in the string."  Every feature
extraction and every pSigene signature evaluation goes through this
function, so the compile cache matters for the performance experiment.

The cache is an explicit process-wide memo keyed on ``(pattern,
ignore_case)`` rather than ``functools.lru_cache``: keyword arguments
make ``lru_cache`` key ``compile_pattern(p)`` and
``compile_pattern(p, ignore_case=True)`` as *different* entries, and its
counters cannot be asserted against in regression tests.  The memo is
what keeps ``SignatureSet.with_threshold`` ROC sweeps from recompiling
the whole catalog once per threshold point.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass


class PatternError(ValueError):
    """Raised when a feature pattern does not compile."""


@dataclass(frozen=True)
class CompileCacheStats:
    """Counters for the process-wide pattern compile cache.

    Attributes:
        hits: compilations served from the memo.
        misses: compilations that invoked ``re.compile`` successfully.
        size: distinct ``(pattern, ignore_case)`` entries retained.
        maxsize: retention capacity (least-recent entries evicted beyond
            it).
    """

    hits: int
    misses: int
    size: int
    maxsize: int


_CACHE_MAXSIZE = 4096
_cache: OrderedDict[tuple[str, bool], re.Pattern[str]] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0


def compile_pattern(
    pattern: str, *, ignore_case: bool = True
) -> re.Pattern[str]:
    """Compile *pattern*, memoized on ``(pattern, ignore_case)``.

    SQLi signatures are case-insensitive by convention (the ModSecurity CRS
    examples in the paper are "seven case insensitive groups"), so
    ``ignore_case`` defaults to true.
    """
    global _cache_hits, _cache_misses
    key = (pattern, ignore_case)
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache_hits += 1
            _cache.move_to_end(key)
            return cached
    flags = re.IGNORECASE if ignore_case else 0
    try:
        compiled = re.compile(pattern, flags)
    except re.error as exc:
        raise PatternError(f"cannot compile {pattern!r}: {exc}") from exc
    with _cache_lock:
        _cache_misses += 1
        _cache[key] = compiled
        if len(_cache) > _CACHE_MAXSIZE:
            _cache.popitem(last=False)
    return compiled


def compile_cache_stats() -> CompileCacheStats:
    """Snapshot of the compile memo's counters."""
    with _cache_lock:
        return CompileCacheStats(
            hits=_cache_hits,
            misses=_cache_misses,
            size=len(_cache),
            maxsize=_CACHE_MAXSIZE,
        )


def compile_cache_clear() -> None:
    """Drop every memoized pattern and reset the counters (tests)."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0


def count_all(pattern: str, text: str, *, ignore_case: bool = True) -> int:
    """Number of non-overlapping matches of *pattern* in *text*.

    Zero-width matches are counted at most once per position by ``finditer``
    semantics; patterns that can match the empty string everywhere would
    distort counts, so they are rejected at compile time.
    """
    compiled = compile_pattern(pattern, ignore_case=ignore_case)
    if compiled.match(""):
        raise PatternError(f"pattern {pattern!r} matches the empty string")
    return sum(1 for _ in compiled.finditer(text))


def matches(pattern: str, text: str, *, ignore_case: bool = True) -> bool:
    """True when *pattern* occurs at least once in *text*."""
    compiled = compile_pattern(pattern, ignore_case=ignore_case)
    return compiled.search(text) is not None


def validate(pattern: str) -> bool:
    """True when *pattern* compiles and cannot match the empty string."""
    try:
        compiled = compile_pattern(pattern)
    except PatternError:
        return False
    return not compiled.match("")
