"""ReDoS linting for signature rulesets.

A signature-based IDS evaluates its regexes against attacker-controlled
input, so a pattern with catastrophic backtracking potential is itself a
vulnerability: one crafted request can pin the sensor's CPU (regular
expression denial of service).  This linter statically analyzes the
patterns of a ruleset for the classic blowup shapes:

* **star height ≥ 2** — an unbounded quantifier nested inside another
  (``(a+)+``, ``(\\s*x)*``): the canonical exponential backtracker;
* **overlapping alternation under repetition** — ``(a|ab)+`` style
  branches whose first-character sets intersect, giving the backtracker
  two ways to consume the same prefix;
* **adjacent overlapping unbounded quantifiers** — ``\\s*\\s*`` /
  ``a*a*``: ambiguous splits of a single run.

The analysis runs on the :mod:`repro.regexlib.nfa` syntax tree, so every
finding is also *actionable*: any pattern the NFA subset accepts can be
executed backtrack-free via :class:`~repro.regexlib.nfa.NfaMatcher`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regexlib.nfa import (
    CharSet,
    Node,
    UnsupportedPatternError,
    _Parser,
)
from repro.regexlib.parser import RegexSyntaxError, tokenize


@dataclass
class RedosReport:
    """Lint outcome for one pattern.

    Attributes:
        pattern: the analyzed pattern.
        analyzable: false when the pattern uses syntax outside the
            analyzer's subset (reported, never guessed about).
        findings: human-readable descriptions of blowup shapes found.
    """

    pattern: str
    analyzable: bool = True
    findings: list[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        """True when analyzable with no findings."""
        return self.analyzable and not self.findings


def _strip_anchors(pattern: str) -> str:
    """Remove top-level anchors (irrelevant to backtracking shape)."""
    out = []
    for token in tokenize(pattern):
        if token.kind == "anchor":
            continue
        out.append(token.text)
    return "".join(out)


def _first_set(node: Node) -> tuple[set[str], bool]:
    """Approximate first-character set; returns ``(chars, is_broad)``.

    ``is_broad`` marks nodes whose first set is effectively unbounded
    (negated classes, ``.``, escape sets) — any two broad sets are treated
    as overlapping.
    """
    if node.kind == "char":
        charset = node.charset
        assert charset is not None
        if charset.negated or charset.ranges:
            return set(), True
        if not charset.fold:
            broad = len(charset.chars) > 20
            return set(charset.chars), broad
        folded = set()
        for ch in charset.chars:
            folded |= {ch.lower(), ch.upper()}
        return folded, False
    if node.kind == "concat":
        for child in node.children:
            chars, broad = _first_set(child)
            if chars or broad:
                return chars, broad
        return set(), False
    if node.kind == "alt":
        union: set[str] = set()
        any_broad = False
        for child in node.children:
            chars, broad = _first_set(child)
            union |= chars
            any_broad = any_broad or broad
        return union, any_broad
    if node.kind == "repeat":
        return _first_set(node.children[0])
    return set(), False


def _overlap(a: Node, b: Node) -> bool:
    chars_a, broad_a = _first_set(a)
    chars_b, broad_b = _first_set(b)
    if broad_a or broad_b:
        # Conservative: a broad first set (negated class, range, dot) is
        # assumed to intersect anything.
        return True
    return bool(chars_a & chars_b)


def _unbounded(node: Node) -> bool:
    return node.kind == "repeat" and node.high is None


def _walk(node: Node, findings: list[str], inside_unbounded: bool) -> None:
    if node.kind == "repeat":
        if _unbounded(node):
            if inside_unbounded:
                findings.append(
                    "nested unbounded repetition (star height >= 2)"
                )
            child = node.children[0]
            if child.kind == "alt":
                branches = child.children
                for i in range(len(branches)):
                    for j in range(i + 1, len(branches)):
                        if _overlap(branches[i], branches[j]):
                            findings.append(
                                "overlapping alternation under "
                                "unbounded repetition"
                            )
                            break
                    else:
                        continue
                    break
            _walk(child, findings, inside_unbounded=True)
        else:
            _walk(node.children[0], findings, inside_unbounded)
        return
    if node.kind == "concat":
        children = node.children
        for left, right in zip(children, children[1:]):
            if _unbounded(left) and _unbounded(right) and _overlap(
                left.children[0], right.children[0]
            ):
                findings.append(
                    "adjacent overlapping unbounded quantifiers"
                )
        for child in children:
            _walk(child, findings, inside_unbounded)
        return
    if node.kind == "alt":
        for child in node.children:
            _walk(child, findings, inside_unbounded)


def lint_pattern(pattern: str) -> RedosReport:
    """Analyze one pattern for catastrophic-backtracking shapes."""
    try:
        stripped = _strip_anchors(pattern)
        tree = _Parser(stripped).parse()
    except (UnsupportedPatternError, RegexSyntaxError):
        return RedosReport(pattern=pattern, analyzable=False)
    findings: list[str] = []
    _walk(tree, findings, inside_unbounded=False)
    # Deduplicate while keeping order.
    unique = list(dict.fromkeys(findings))
    return RedosReport(pattern=pattern, findings=unique)


def lint_ruleset(rules) -> dict[str, RedosReport]:
    """Lint every enabled rule of a ruleset; keyed by rule sid."""
    reports: dict[str, RedosReport] = {}
    for rule in rules:
        if not rule.enabled:
            continue
        reports[str(rule.sid)] = lint_pattern(rule.pattern)
    return reports
