"""Structural parsing of regular expressions for signature deconstruction.

Section II-B: "We did not use a whole signature as a single feature, but
rather divided the signature into logical components ... we used
metacharacters such as parentheses () and the alternation operator | that
delimit logical groups and branches inside a regular expression."

This module implements that deconstruction: a scanner that understands
escapes, character classes, and group nesting well enough to split a pattern
at *top-level* alternations and to enumerate its top-level groups — without
needing a full regex engine (matching itself is delegated to :mod:`re`).
"""

from __future__ import annotations

from dataclasses import dataclass


class RegexSyntaxError(ValueError):
    """Raised when a pattern's bracket/paren structure is malformed."""


@dataclass(frozen=True)
class Token:
    """One lexical unit of a pattern.

    Attributes:
        kind: ``literal``, ``escape``, ``class``, ``group_open``,
            ``group_close``, ``alternation``, ``quantifier``, or ``anchor``.
        text: the raw pattern text of the token.
        position: index of the token's first character in the pattern.
    """

    kind: str
    text: str
    position: int


_QUANTIFIER_START = "*+?{"
_ANCHORS = "^$"


def tokenize(pattern: str) -> list[Token]:
    """Tokenize *pattern* into structural units.

    The tokenizer is intentionally shallow: it only needs to be exact about
    the constructs that affect *structure* (escapes, classes, groups,
    alternation); everything else is a literal.
    """
    tokens: list[Token] = []
    i = 0
    n = len(pattern)
    while i < n:
        ch = pattern[i]
        if ch == "\\":
            if i + 1 >= n:
                raise RegexSyntaxError("dangling backslash at end of pattern")
            tokens.append(Token("escape", pattern[i : i + 2], i))
            i += 2
        elif ch == "[":
            j = i + 1
            if j < n and pattern[j] == "^":
                j += 1
            if j < n and pattern[j] == "]":
                j += 1
            while j < n and pattern[j] != "]":
                if pattern[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise RegexSyntaxError(f"unterminated character class at {i}")
            tokens.append(Token("class", pattern[i : j + 1], i))
            i = j + 1
        elif ch == "(":
            j = i + 1
            if j < n and pattern[j] == "?":
                j += 1
                while j < n and pattern[j] not in "):":
                    j += 1
                if j < n and pattern[j] == ":":
                    j += 1
            tokens.append(Token("group_open", pattern[i:j], i))
            i = j
        elif ch == ")":
            tokens.append(Token("group_close", ")", i))
            i += 1
        elif ch == "|":
            tokens.append(Token("alternation", "|", i))
            i += 1
        elif ch in _QUANTIFIER_START:
            j = i + 1
            if ch == "{":
                while j < n and pattern[j] != "}":
                    j += 1
                if j >= n:
                    # `{` with no closing brace is a literal in most flavours.
                    tokens.append(Token("literal", "{", i))
                    i += 1
                    continue
                j += 1
            if j < n and pattern[j] == "?":
                j += 1
            tokens.append(Token("quantifier", pattern[i:j], i))
            i = j
        elif ch in _ANCHORS:
            tokens.append(Token("anchor", ch, i))
            i += 1
        else:
            tokens.append(Token("literal", ch, i))
            i += 1
    return tokens


def split_alternation(pattern: str) -> list[str]:
    """Split *pattern* at alternation operators that sit at nesting depth 0.

    ``a|b(c|d)`` → ``["a", "b(c|d)"]``.  A pattern without top-level ``|``
    returns as a single-element list.
    """
    branches: list[str] = []
    depth = 0
    start = 0
    for token in tokenize(pattern):
        if token.kind == "group_open":
            depth += 1
        elif token.kind == "group_close":
            depth -= 1
            if depth < 0:
                raise RegexSyntaxError(f"unbalanced ')' at {token.position}")
        elif token.kind == "alternation" and depth == 0:
            branches.append(pattern[start : token.position])
            start = token.position + 1
    if depth != 0:
        raise RegexSyntaxError("unbalanced '(' in pattern")
    branches.append(pattern[start:])
    return branches


def top_level_groups(pattern: str) -> list[str]:
    """Return the contents of every depth-1 group in *pattern*.

    ``(?:a)|(?:b|c)d`` → ``["a", "b|c"]``.  This is the other half of the
    deconstruction: a ModSecurity signature written as
    ``(?:g1)|(?:g2)|...|(?:g7)`` yields its seven feature fragments.
    """
    groups: list[str] = []
    depth = 0
    body_start = 0
    for token in tokenize(pattern):
        if token.kind == "group_open":
            depth += 1
            if depth == 1:
                body_start = token.position + len(token.text)
        elif token.kind == "group_close":
            if depth == 1:
                groups.append(pattern[body_start : token.position])
            depth -= 1
            if depth < 0:
                raise RegexSyntaxError(f"unbalanced ')' at {token.position}")
    if depth != 0:
        raise RegexSyntaxError("unbalanced '(' in pattern")
    return groups


def deconstruct(pattern: str) -> list[str]:
    """Deconstruct a signature regex into logical component patterns.

    The rule mirrors Section II-B: split at top-level alternation; for a
    branch that is exactly one group, recurse into the group body.  The
    result is a flat list of component patterns, each usable as a feature.
    """
    components: list[str] = []
    for branch in split_alternation(pattern):
        branch = branch.strip()
        if not branch:
            continue
        inner = _sole_group_body(branch)
        if inner is not None:
            components.extend(deconstruct(inner))
        else:
            components.append(branch)
    return components


def _sole_group_body(branch: str) -> str | None:
    """If *branch* is exactly one group (e.g. ``(?:...)``), return its body."""
    tokens = tokenize(branch)
    if not tokens or tokens[0].kind != "group_open":
        return None
    if tokens[-1].kind != "group_close":
        return None
    depth = 0
    for index, token in enumerate(tokens):
        if token.kind == "group_open":
            depth += 1
        elif token.kind == "group_close":
            depth -= 1
            if depth == 0 and index != len(tokens) - 1:
                return None
    head = tokens[0]
    return branch[len(head.text) : -1]


def literal_text(pattern: str) -> str:
    """Best-effort extraction of the plain literal characters of *pattern*.

    Used to human-label features (``"union\\s+select"`` → ``"union select"``)
    and by tests to sanity-check deconstruction output.
    """
    out: list[str] = []
    for token in tokenize(pattern):
        if token.kind == "literal":
            out.append(token.text)
        elif token.kind == "escape" and token.text[1] in "sS":
            out.append(" ")
        elif token.kind == "escape" and token.text[1] not in "dDwWbBAZz":
            out.append(token.text[1])
    return "".join(out)
