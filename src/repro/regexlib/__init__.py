"""Regex utilities: structural deconstruction and the count_all matcher."""

from repro.regexlib.nfa import (
    CharSet,
    NfaFragment,
    NfaMatcher,
    Node,
    UnsupportedPatternError,
    parse_pattern,
)
from repro.regexlib.ops import (
    CompileCacheStats,
    PatternError,
    compile_cache_clear,
    compile_cache_stats,
    compile_pattern,
    count_all,
    matches,
    validate,
)
from repro.regexlib.redos import RedosReport, lint_pattern, lint_ruleset
from repro.regexlib.parser import (
    RegexSyntaxError,
    Token,
    deconstruct,
    literal_text,
    split_alternation,
    tokenize,
    top_level_groups,
)

__all__ = [
    "Token",
    "RegexSyntaxError",
    "tokenize",
    "split_alternation",
    "top_level_groups",
    "deconstruct",
    "literal_text",
    "PatternError",
    "CompileCacheStats",
    "compile_cache_clear",
    "compile_cache_stats",
    "compile_pattern",
    "count_all",
    "matches",
    "validate",
    "NfaMatcher",
    "NfaFragment",
    "Node",
    "parse_pattern",
    "CharSet",
    "UnsupportedPatternError",
    "lint_pattern",
    "lint_ruleset",
    "RedosReport",
]
