"""A Thompson-construction NFA regex engine.

Production NIDS cannot run backtracking regex engines on attacker-
controlled input — a crafted payload can drive a backtracker exponential
(ReDoS) and take the sensor offline, which is why Bro/Zeek and Snort
compile signatures to automata with guaranteed linear-time matching.
This module provides that substrate for the reproduced rulesets: a parser
for the signature subset of regex syntax, Thompson construction to an
ε-NFA, and a lockstep subset simulation whose running time is
O(len(text) · states) regardless of the pattern.

Supported syntax (the subset the SQLi signatures use): literals, ``.``,
escapes (``\\s \\S \\d \\D \\w \\W`` and escaped punctuation), character
classes with ranges and negation, groups ``(...)``/``(?:...)``,
alternation, word boundaries ``\\b``/``\\B`` (as guarded ε-transitions),
and the quantifiers ``* + ? {m} {m,} {m,n}`` (greedy and lazy — laziness
does not change *whether* an occurrence exists, so the subset simulation
treats them alike).  Anchors and backreferences are not supported
(backreferences are fundamentally non-regular).

Used by tests as a differential oracle against :mod:`re` and by the
ReDoS linter as the safe execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regexlib.parser import RegexSyntaxError


class UnsupportedPatternError(ValueError):
    """Raised for syntax outside the supported subset."""


class _BoundarySignal(Exception):
    """Internal: the escape scanner met \\b/\\B outside a class."""

    def __init__(self, guard: str) -> None:
        super().__init__(guard)
        self.guard = guard


# ---------------------------------------------------------------------------
# Character predicates
# ---------------------------------------------------------------------------

_WHITESPACE = frozenset(" \t\n\r\f\v")
_DIGITS = frozenset("0123456789")
_WORD = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


@dataclass(frozen=True)
class CharSet:
    """A set of characters, possibly negated.

    Attributes:
        chars: explicit members (case-folded when ``fold`` is set).
        ranges: inclusive ``(low, high)`` codepoint ranges.
        negated: match everything *not* in the set.
        fold: case-insensitive membership.
    """

    chars: frozenset[str] = frozenset()
    ranges: tuple[tuple[int, int], ...] = ()
    negated: bool = False
    fold: bool = True

    def matches(self, ch: str) -> bool:
        """Membership test for one character."""
        candidates = {ch}
        if self.fold:
            candidates |= {ch.lower(), ch.upper()}
        hit = any(c in self.chars for c in candidates) or any(
            low <= ord(c) <= high
            for c in candidates
            for low, high in self.ranges
        )
        return hit != self.negated


_DOT = CharSet(chars=frozenset("\n"), negated=True, fold=False)

_ESCAPE_SETS = {
    "s": CharSet(chars=frozenset(_WHITESPACE), fold=False),
    "S": CharSet(chars=frozenset(_WHITESPACE), negated=True, fold=False),
    "d": CharSet(chars=frozenset(_DIGITS), fold=False),
    "D": CharSet(chars=frozenset(_DIGITS), negated=True, fold=False),
    "w": CharSet(chars=frozenset(_WORD), fold=False),
    "W": CharSet(chars=frozenset(_WORD), negated=True, fold=False),
}

_ESCAPE_LITERALS = {
    "n": "\n", "t": "\t", "r": "\r", "f": "\f", "v": "\v", "0": "\0",
}


# ---------------------------------------------------------------------------
# Syntax tree
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Node:
    """AST node: ``kind`` ∈ {char, concat, alt, repeat, empty, boundary}."""

    kind: str
    charset: CharSet | None = None
    children: tuple["Node", ...] = ()
    low: int = 0
    high: int | None = None  # None = unbounded
    guard: str = ""  # boundary nodes: "b" or "B"


class _Parser:
    """Recursive-descent parser for the supported subset."""

    _MAX_COUNTED = 64  # {m,n} expansion bound

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.position = 0

    def parse(self) -> Node:
        node = self._alternation()
        if self.position != len(self.pattern):
            raise RegexSyntaxError(
                f"unexpected {self.pattern[self.position]!r} at "
                f"{self.position}"
            )
        return node

    # -- grammar -----------------------------------------------------------

    def _alternation(self) -> Node:
        branches = [self._concat()]
        while self._peek() == "|":
            self.position += 1
            branches.append(self._concat())
        if len(branches) == 1:
            return branches[0]
        return Node(kind="alt", children=tuple(branches))

    def _concat(self) -> Node:
        parts: list[Node] = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)":
                break
            parts.append(self._repeat())
        if not parts:
            return Node(kind="empty")
        if len(parts) == 1:
            return parts[0]
        return Node(kind="concat", children=tuple(parts))

    def _repeat(self) -> Node:
        atom = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self.position += 1
                self._skip_lazy()
                atom = Node(kind="repeat", children=(atom,), low=0,
                            high=None)
            elif ch == "+":
                self.position += 1
                self._skip_lazy()
                atom = Node(kind="repeat", children=(atom,), low=1,
                            high=None)
            elif ch == "?":
                self.position += 1
                self._skip_lazy()
                atom = Node(kind="repeat", children=(atom,), low=0, high=1)
            elif ch == "{":
                bounds = self._counted()
                if bounds is None:
                    break  # literal brace already consumed as atom? no:
                low, high = bounds
                atom = Node(kind="repeat", children=(atom,), low=low,
                            high=high)
            else:
                break
        return atom

    def _counted(self) -> tuple[int, int | None] | None:
        start = self.position
        assert self.pattern[self.position] == "{"
        end = self.pattern.find("}", self.position)
        if end == -1:
            raise UnsupportedPatternError("unterminated {…} quantifier")
        body = self.pattern[self.position + 1:end]
        parts = body.split(",")
        try:
            if len(parts) == 1:
                low = high = int(parts[0])
            elif len(parts) == 2:
                low = int(parts[0]) if parts[0] else 0
                high = int(parts[1]) if parts[1] else None
            else:
                raise ValueError
        except ValueError:
            raise UnsupportedPatternError(
                f"bad counted quantifier {{{body}}}"
            ) from None
        if high is not None and high < low:
            raise UnsupportedPatternError(f"{{{body}}}: max < min")
        if max(low, high or 0) > self._MAX_COUNTED:
            raise UnsupportedPatternError(
                f"counted repetition above {self._MAX_COUNTED} unsupported"
            )
        self.position = end + 1
        self._skip_lazy()
        del start
        return low, high

    def _atom(self) -> Node:
        ch = self._peek()
        if ch is None:
            return Node(kind="empty")
        if ch == "(":
            self.position += 1
            if self.pattern.startswith("?:", self.position):
                self.position += 2
            elif self._peek() == "?":
                # (?=…), (?!…), (?P<…>) etc. — outside the subset.
                raise UnsupportedPatternError(
                    f"unsupported group at {self.position - 1}"
                )
            inner = self._alternation()
            if self._peek() != ")":
                raise RegexSyntaxError("unbalanced '('")
            self.position += 1
            return inner
        if ch == "[":
            return Node(kind="char", charset=self._char_class())
        if ch == ".":
            self.position += 1
            return Node(kind="char", charset=_DOT)
        if ch == "\\":
            try:
                return Node(kind="char", charset=self._escape())
            except _BoundarySignal as signal:
                return Node(kind="boundary", guard=signal.guard)
        if ch in "*+?":
            raise RegexSyntaxError(f"dangling quantifier at {self.position}")
        if ch in "^$":
            raise UnsupportedPatternError("anchors unsupported")
        self.position += 1
        return Node(kind="char", charset=CharSet(chars=frozenset(ch)))

    def _escape(self) -> CharSet:
        assert self.pattern[self.position] == "\\"
        self.position += 1
        if self.position >= len(self.pattern):
            raise RegexSyntaxError("dangling backslash")
        ch = self.pattern[self.position]
        self.position += 1
        if ch in _ESCAPE_SETS:
            return _ESCAPE_SETS[ch]
        if ch in _ESCAPE_LITERALS:
            return CharSet(
                chars=frozenset(_ESCAPE_LITERALS[ch]), fold=False
            )
        if ch in "bB":
            # Signalled to _atom via sentinel; inside classes \b is a
            # backspace character.
            raise _BoundarySignal(ch)
        if ch == "x":
            digits = self.pattern[self.position:self.position + 2]
            if len(digits) != 2:
                raise RegexSyntaxError("bad \\x escape")
            self.position += 2
            return CharSet(chars=frozenset(chr(int(digits, 16))),
                           fold=False)
        if ch in "AZz" or ch.isdigit():
            raise UnsupportedPatternError(
                f"escape \\{ch} unsupported (anchor/backreference)"
            )
        return CharSet(chars=frozenset(ch))

    def _char_class(self) -> CharSet:
        assert self.pattern[self.position] == "["
        self.position += 1
        negated = False
        if self._peek() == "^":
            negated = True
            self.position += 1
        chars: set[str] = set()
        ranges: list[tuple[int, int]] = []
        first = True
        while True:
            ch = self._peek()
            if ch is None:
                raise RegexSyntaxError("unterminated character class")
            if ch == "]" and not first:
                self.position += 1
                break
            first = False
            if ch == "\\":
                try:
                    escaped = self._escape()
                except _BoundarySignal:
                    chars.add("\x08")  # \b inside a class is backspace
                    continue
                if escaped.ranges or escaped.negated:
                    raise UnsupportedPatternError(
                        "negated escape inside class unsupported"
                    )
                if len(escaped.chars) > 1:
                    chars |= set(escaped.chars)
                    continue
                low_char = next(iter(escaped.chars))
            else:
                low_char = ch
                self.position += 1
            if (
                self._peek() == "-"
                and self.position + 1 < len(self.pattern)
                and self.pattern[self.position + 1] != "]"
            ):
                self.position += 1
                high_char = self._peek()
                if high_char == "\\":
                    escaped = self._escape()
                    if len(escaped.chars) != 1:
                        raise UnsupportedPatternError(
                            "class range to escape-set unsupported"
                        )
                    high_char = next(iter(escaped.chars))
                else:
                    self.position += 1
                if ord(high_char) < ord(low_char):
                    raise RegexSyntaxError("reversed class range")
                ranges.append((ord(low_char), ord(high_char)))
            else:
                chars.add(low_char)
        return CharSet(
            chars=frozenset(chars), ranges=tuple(ranges), negated=negated
        )

    # -- helpers -----------------------------------------------------------

    def _peek(self) -> str | None:
        if self.position < len(self.pattern):
            return self.pattern[self.position]
        return None

    def _skip_lazy(self) -> None:
        if self._peek() == "?":
            self.position += 1


def parse_pattern(pattern: str) -> Node:
    """Parse *pattern* into its :class:`Node` syntax tree.

    The structural entry point for analyses that need the tree without a
    compiled matcher — ``repro.match`` classifies catalog patterns and
    extracts required literal factors from it.

    Raises:
        UnsupportedPatternError: for syntax outside the supported subset.
        RegexSyntaxError: for malformed patterns.
    """
    return _Parser(pattern).parse()


# ---------------------------------------------------------------------------
# Thompson construction
# ---------------------------------------------------------------------------

@dataclass
class _State:
    """One NFA state: ε-transitions (optionally boundary-guarded) plus at
    most one charset edge."""

    epsilon: list[int] = field(default_factory=list)
    guarded: list[tuple[int, str]] = field(default_factory=list)
    charset: CharSet | None = None
    target: int = -1


@dataclass(frozen=True)
class NfaFragment:
    """Flattened structural copy of one compiled NFA.

    ``repro.match`` merges per-pattern fragments into a single
    multi-pattern automaton by renumbering states into a shared arena;
    the tuples here are index-aligned per state, so a consumer only has
    to add its offset to every transition target.

    Attributes:
        epsilon: per-state unguarded ε-transition targets.
        guarded: per-state ``(target, guard)`` boundary-guarded ε-edges
            (guard is ``"b"`` or ``"B"``).
        charsets: per-state consuming edge's :class:`CharSet`, or ``None``
            when the state has no consuming edge.
        targets: per-state consuming edge's target (-1 when none).
        start: initial state index.
        accept: accepting state index.
    """

    epsilon: tuple[tuple[int, ...], ...]
    guarded: tuple[tuple[tuple[int, str], ...], ...]
    charsets: tuple[CharSet | None, ...]
    targets: tuple[int, ...]
    start: int
    accept: int

    @property
    def has_guards(self) -> bool:
        """True when any state carries a boundary-guarded ε-edge."""
        return any(edges for edges in self.guarded)


class NfaMatcher:
    """A compiled pattern with linear-time search and counting.

    Matching is *unanchored occurrence detection*, the semantics the IDS
    engines need: does the pattern occur anywhere in the input, and how
    many non-overlapping occurrences are there.
    """

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        tree = _Parser(pattern).parse()
        self._states: list[_State] = []
        self.start, self.accept = self._build(tree)
        if self._nullable(tree):
            raise UnsupportedPatternError(
                "pattern matches the empty string (useless as a feature)"
            )

    # -- construction -------------------------------------------------------

    def _new_state(self) -> int:
        self._states.append(_State())
        return len(self._states) - 1

    def _build(self, node: Node) -> tuple[int, int]:
        if node.kind == "empty":
            start = self._new_state()
            accept = self._new_state()
            self._states[start].epsilon.append(accept)
            return start, accept
        if node.kind == "char":
            start = self._new_state()
            accept = self._new_state()
            self._states[start].charset = node.charset
            self._states[start].target = accept
            return start, accept
        if node.kind == "boundary":
            start = self._new_state()
            accept = self._new_state()
            self._states[start].guarded.append((accept, node.guard))
            return start, accept
        if node.kind == "concat":
            start, tail = self._build(node.children[0])
            for child in node.children[1:]:
                next_start, next_tail = self._build(child)
                self._states[tail].epsilon.append(next_start)
                tail = next_tail
            return start, tail
        if node.kind == "alt":
            start = self._new_state()
            accept = self._new_state()
            for child in node.children:
                child_start, child_accept = self._build(child)
                self._states[start].epsilon.append(child_start)
                self._states[child_accept].epsilon.append(accept)
            return start, accept
        if node.kind == "repeat":
            return self._build_repeat(node)
        raise AssertionError(node.kind)

    def _build_repeat(self, node: Node) -> tuple[int, int]:
        child = node.children[0]
        start = self._new_state()
        current = start
        # Mandatory copies.
        for _ in range(node.low):
            child_start, child_accept = self._build(child)
            self._states[current].epsilon.append(child_start)
            current = child_accept
        accept = self._new_state()
        if node.high is None:
            # Kleene tail.
            loop_start, loop_accept = self._build(child)
            self._states[current].epsilon.append(loop_start)
            self._states[current].epsilon.append(accept)
            self._states[loop_accept].epsilon.append(loop_start)
            self._states[loop_accept].epsilon.append(accept)
        else:
            # Bounded optional copies.
            for _ in range(node.high - node.low):
                self._states[current].epsilon.append(accept)
                child_start, child_accept = self._build(child)
                self._states[current].epsilon.append(child_start)
                current = child_accept
            self._states[current].epsilon.append(accept)
        return start, accept

    def _nullable(self, node: Node) -> bool:
        if node.kind in ("empty", "boundary"):
            return True
        if node.kind == "char":
            return False
        if node.kind == "concat":
            return all(self._nullable(c) for c in node.children)
        if node.kind == "alt":
            return any(self._nullable(c) for c in node.children)
        if node.kind == "repeat":
            return node.low == 0 or self._nullable(node.children[0])
        raise AssertionError(node.kind)

    @property
    def state_count(self) -> int:
        """Number of NFA states (matching cost is O(text · states))."""
        return len(self._states)

    def fragment(self) -> NfaFragment:
        """Structural copy of this NFA for multi-pattern composition."""
        return NfaFragment(
            epsilon=tuple(tuple(s.epsilon) for s in self._states),
            guarded=tuple(tuple(s.guarded) for s in self._states),
            charsets=tuple(s.charset for s in self._states),
            targets=tuple(s.target for s in self._states),
            start=self.start,
            accept=self.accept,
        )

    # -- simulation -----------------------------------------------------------

    @staticmethod
    def _is_word(ch: str | None) -> bool:
        return ch is not None and (ch.isalnum() or ch == "_")

    def _closure(
        self,
        states: set[int],
        prev: str | None = None,
        upcoming: str | None = None,
    ) -> set[int]:
        at_boundary = self._is_word(prev) != self._is_word(upcoming)
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for nxt in self._states[state].epsilon:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
            for nxt, guard in self._states[state].guarded:
                passes = at_boundary if guard == "b" else not at_boundary
                if passes and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def search(self, text: str) -> bool:
        """True when the pattern occurs anywhere in *text* (linear time)."""
        first = text[0] if text else None
        current = self._closure({self.start}, None, first)
        for index, ch in enumerate(text):
            if self.accept in current:
                return True
            upcoming = text[index + 1] if index + 1 < len(text) else None
            next_states = {self.start}
            for state in current:
                node = self._states[state]
                if node.charset is not None and node.charset.matches(ch):
                    next_states.add(node.target)
            current = self._closure(next_states, ch, upcoming)
        return self.accept in current

    def count(self, text: str) -> int:
        """Non-overlapping occurrence count (leftmost restart semantics).

        After an accept, the simulation restarts from scratch at the next
        character — the counting discipline ``count_all`` needs.
        """
        occurrences = 0
        first = text[0] if text else None
        current = self._closure({self.start}, None, first)
        for index, ch in enumerate(text):
            upcoming = text[index + 1] if index + 1 < len(text) else None
            next_states = {self.start}
            for state in current:
                node = self._states[state]
                if node.charset is not None and node.charset.matches(ch):
                    next_states.add(node.target)
            current = self._closure(next_states, ch, upcoming)
            if self.accept in current:
                occurrences += 1
                current = self._closure({self.start}, ch, upcoming)
        return occurrences
